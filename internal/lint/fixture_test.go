package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture parses and type-checks testdata/src/<name> the same way
// Load handles real packages: comments retained (waivers live there)
// and imports resolved from build-cache export data, so fixtures can
// use time, math/rand and friends offline.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("fixture %s has no Go files", name)
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", name, err)
	}

	// Resolve the fixture's imports (stdlib only) to export data.
	var paths []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		sort.Strings(paths)
		exports, err = exportData(".", paths)
		if err != nil {
			t.Fatalf("export data for fixture %s: %v", name, err)
		}
	}

	info := newInfo()
	tpkg, err := checkFiles(name, fset, files, exportImporter(fset, exports), info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return &Package{Path: name, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// wantRx extracts the expectation regexes from a trailing
// `// want "rx"` (or `// want "rx" "rx2"`) comment.
var wantRx = regexp.MustCompile(`"([^"]*)"`)

// expectation is one // want entry awaiting a matching finding.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// collectWants scans fixture comments for analysistest-style
// expectations keyed to the comment's own line.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(rest, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out
}

// runFixture checks the fixture package under the given class and
// diffs the findings against its // want comments: every finding
// must be expected on its line, every expectation must fire.
func runFixture(t *testing.T, name string, class Class) {
	t.Helper()
	pkg := loadFixture(t, name)
	wants := collectWants(t, pkg)
	findings := CheckPackage(pkg, class)

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func TestMapIterFixture(t *testing.T) {
	runFixture(t, "mapiter", Class{MapIter: true})
}

func TestWallClockFixture(t *testing.T) {
	runFixture(t, "wallclock", Class{WallClock: true})
}

func TestGoroutineFixture(t *testing.T) {
	runFixture(t, "goroutine", Class{Goroutine: true})
}

func TestFloatFoldFixture(t *testing.T) {
	runFixture(t, "floatfold", Class{FloatFold: true})
}

// TestSchedFixture is the acceptance case from the issue: a package
// literally named sched, checked under the full sim-core class, where
// an unsorted map range and a hand-built Event both must be flagged.
func TestSchedFixture(t *testing.T) {
	runFixture(t, "sched", simCore)
}

// TestWaiverHygiene pins the waiver lifecycle with direct assertions
// (want comments cannot share a line with the waivers under test): a
// waiver with no reason is a finding AND suppresses nothing, and a
// waiver matching no finding is reported stale.
func TestWaiverHygiene(t *testing.T) {
	pkg := loadFixture(t, "waiver")
	findings := CheckPackage(pkg, Class{WallClock: true})

	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%d:%s", f.Pos.Line, f.Rule))
	}
	wantSubstr := []struct {
		rule, msg string
	}{
		{"waiver", "suppresses nothing"},               // stale waiver
		{"waiver", "needs a justification"},            // empty reason
		{"wallclock", "time.Now reads the wall clock"}, // not suppressed by the empty-reason waiver
	}
	if len(findings) != len(wantSubstr) {
		t.Fatalf("got %d findings %v, want %d", len(findings), got, len(wantSubstr))
	}
	for i, w := range wantSubstr {
		if findings[i].Rule != w.rule || !strings.Contains(findings[i].Msg, w.msg) {
			t.Errorf("finding %d = %s, want rule %q containing %q", i, findings[i], w.rule, w.msg)
		}
	}
}

// TestWaiverSuppression confirms a reasoned waiver on the offending
// line or the line above silences the finding and is counted used.
func TestWaiverSuppression(t *testing.T) {
	pkg := loadFixture(t, "waived")
	findings := CheckPackage(pkg, Class{WallClock: true})
	for _, f := range findings {
		t.Errorf("waived fixture must be clean, got: %s", f)
	}
}
