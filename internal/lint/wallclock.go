package lint

import (
	"go/ast"
	"go/types"
)

// WallClock forbids wall-clock reads and the globally-seeded
// math/rand source in determinism-critical packages. Simulated time
// comes from simclock.Time and randomness from an explicitly seeded
// rand.New(rand.NewSource(seed)); time.Now (and friends) or the
// process-global rand functions make two identically-configured runs
// diverge. Constructors that build a seeded generator (rand.New,
// rand.NewSource, and the v2 equivalents) stay legal — it is the
// shared global source that is banned, not the package.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Until and global math/rand functions in " +
		"determinism-critical packages; seeded rand.New(rand.NewSource(...)) stays legal",
	Run: runWallClock,
}

// bannedTime are the time package's wall-clock reads. References are
// flagged whether called or stored (a stored time.Now func value is
// still a wall-clock read at every call site).
var bannedTime = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// allowedRand are the math/rand (and /v2) package-level names that
// construct explicitly-seeded generators rather than touching the
// global source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand, never the global source
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runWallClock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if bannedTime[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock; deterministic code takes time from simclock.Time (or an injected Clock) — waive with //lint:ordered <reason> if this never reaches a run's output",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				// Type references (rand.Rand, rand.Source, ...) are
				// fine; only package-level functions touch the global
				// source.
				if _, isType := p.Info.Uses[sel.Sel].(*types.TypeName); isType {
					return true
				}
				if !allowedRand[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "global rand.%s draws from the process-wide source; use a seeded rand.New(rand.NewSource(seed)) so runs replay byte-identically",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
