package lint

import (
	"go/ast"
	"go/types"
)

// MapIter flags range statements over maps in determinism-critical
// packages. Go randomizes map iteration order per run, so any map
// range whose body can observe the order is a golden-corpus byte diff
// waiting to happen. Two shapes stay legal without a waiver:
//
//   - for range m { ... } with neither key nor value bound: the body
//     cannot observe the order, only the count.
//   - the collect-and-sort idiom: a body that is exactly one append of
//     the key into a slice (for later sorting). The sort itself is the
//     author's responsibility; the analyzer checks that nothing else
//     happens inside the unordered loop.
//
// Everything else needs the keys collected and sorted first, or a
// //lint:ordered <reason> waiver.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags range over a map in determinism-critical packages unless the " +
		"loop only collects keys for sorting (or carries a //lint:ordered waiver)",
	Run: runMapIter,
}

func runMapIter(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				// Order unobservable: the body sees neither key nor
				// value.
				return true
			}
			if isKeyCollectLoop(p, rs) {
				return true
			}
			p.Reportf(rs.For, "range over map %s iterates in nondeterministic order; collect and sort the keys first, or waive with //lint:ordered <reason>",
				types.ExprString(rs.X))
			return true
		})
	}
}

// isKeyCollectLoop reports whether the range body is exactly the
// collect idiom: one statement, `s = append(s, ...)`, with the range
// key referenced in the appended values. Such loops feed a sort; the
// iteration order they see never escapes unsorted.
func isKeyCollectLoop(p *Pass, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := p.Info.ObjectOf(key)
	if keyObj == nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	// The append target and the assignment target must be the same
	// variable (or field chain), and the key must flow into the
	// appended values.
	if !sameRef(p, as.Lhs[0], call.Args[0]) {
		return false
	}
	for _, arg := range call.Args[1:] {
		if referencesObject(p, arg, keyObj) {
			return true
		}
	}
	return false
}

// sameRef reports whether two expressions name the same variable or
// the same field chain rooted at the same variable.
func sameRef(p *Pass, a, b ast.Expr) bool {
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && p.Info.ObjectOf(ae) != nil && p.Info.ObjectOf(ae) == p.Info.ObjectOf(be)
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && sameRef(p, ae.X, be.X)
	}
	return false
}

// referencesObject reports whether the expression mentions obj.
func referencesObject(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
