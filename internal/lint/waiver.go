package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// waiverDirective is the comment prefix that suppresses a finding on
// its own line or the line directly below. The text after the
// directive is the mandatory justification.
const waiverDirective = "//lint:ordered"

// waiver is one //lint:ordered comment found in a package.
type waiver struct {
	pos    token.Position
	reason string
	// used flips when the waiver suppresses at least one finding; an
	// unused waiver is stale and becomes a finding itself.
	used bool
}

// collectWaivers scans the parsed files for //lint:ordered comments.
// Files must have been parsed with parser.ParseComments.
func collectWaivers(fset *token.FileSet, files []*ast.File) []*waiver {
	var out []*waiver
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, waiverDirective)
				if !ok {
					continue
				}
				// Require a clean directive: "//lint:orderedfoo" is
				// not a waiver, "//lint:ordered foo" is.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				out = append(out, &waiver{
					pos:    fset.Position(c.Pos()),
					reason: strings.TrimSpace(rest),
				})
			}
		}
	}
	return out
}

// matchWaiver returns the waiver covering a finding at pos: one in the
// same file on the same line (trailing comment) or the line above
// (comment-above form). nil when the finding stands.
func matchWaiver(ws []*waiver, pos token.Position) *waiver {
	for _, w := range ws {
		if w.pos.Filename != pos.Filename || w.reason == "" {
			continue
		}
		if w.pos.Line == pos.Line || w.pos.Line == pos.Line-1 {
			return w
		}
	}
	return nil
}
