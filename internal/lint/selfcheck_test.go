package lint

import "testing"

// TestRepoClean is the suite's own gate: the repository must come up
// clean under gfslint, so any new violation fails `go test ./...`
// locally before CI ever sees it. The fixture tests prove the rules
// fire; this test proves the tree obeys them.
func TestRepoClean(t *testing.T) {
	findings, err := Check("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Check: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Log("fix the finding, or waive an intentional violation with //lint:ordered <reason>")
	}
}
