// Package lint implements gfslint, the determinism-contract analyzer
// suite that guards the golden corpus at compile time.
//
// Every layer of this reproduction — the Eq. 13–16 placement loop, the
// sharded event spine, the autoscaler — stands on one contract: runs
// are byte-identical across GOMAXPROCS × shards. The dynamic proof is
// TestGoldenCorpus/TestShardEquivalence; this package is the static
// half, promoting the checklist in docs/performance.md to
// machine-checked rules:
//
//   - mapiter: no range over a map in determinism-critical packages
//     unless the loop only collects keys for sorting.
//   - wallclock: no time.Now/Since/Until and no global math/rand in
//     those packages; seeded rand.New(rand.NewSource(...)) stays legal.
//   - goroutine: no raw go statements in the simulator core outside
//     the blessed shardGroup/Parallel fan-out.
//   - floatfold: no captured float accumulation inside Parallel scan
//     callbacks; folds must go through per-shard slots reduced in
//     shard order.
//   - eventemit: sched.Event values are constructed only on the emit
//     path that stamps At/Seq under the global sequence.
//
// Intentional violations carry a //lint:ordered <reason> waiver on the
// offending line or the line directly above it. A waiver that no
// longer suppresses anything is itself a finding, so waivers cannot
// rot.
//
// The Analyzer/Pass surface deliberately mirrors
// golang.org/x/tools/go/analysis so each rule can be ported verbatim
// to a `go vet -vettool` multichecker; this repository grows in an
// offline container without x/tools, so the driver here is
// self-contained on go/ast, go/types and the go command (see load.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one determinism rule: a name findings are reported
// under, a doc string for the rule catalogue, and a Run function
// invoked once per package.
type Analyzer struct {
	// Name identifies the rule in findings and the catalogue.
	Name string
	// Doc is the one-paragraph rule description.
	Doc string
	// Run inspects one package and reports findings on the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package, mirroring
// analysis.Pass: parsed files, type information, and a report sink.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info

	diags *[]diag
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, diag{
		rule: p.Analyzer.Name,
		pos:  p.Fset.Position(pos),
		msg:  fmt.Sprintf(format, args...),
	})
}

// diag is a raw diagnostic before waivers are applied.
type diag struct {
	rule string
	pos  token.Position
	msg  string
}

// Finding is one confirmed violation (or waiver problem) with its
// source position resolved.
type Finding struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the analyzer (or "waiver" for waiver hygiene).
	Rule string
	// Msg explains the violation.
	Msg string
}

// String renders the finding in the file:line:col: rule: msg form the
// CLI prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzers returns the full rule suite in catalogue order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, WallClock, Goroutine, FloatFold, EventEmit}
}

// CheckPackage runs every analyzer the class enables over one loaded
// package, applies //lint:ordered waivers, and reports the surviving
// findings plus waiver-hygiene findings (missing reasons, stale
// waivers), sorted by position.
func CheckPackage(pkg *Package, class Class) []Finding {
	var diags []diag
	for _, a := range Analyzers() {
		if !class.enables(a.Name) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}

	waivers := collectWaivers(pkg.Fset, pkg.Files)
	var out []Finding
	for _, d := range diags {
		if w := matchWaiver(waivers, d.pos); w != nil {
			w.used = true
			continue
		}
		out = append(out, Finding{Pos: d.pos, Rule: d.rule, Msg: d.msg})
	}
	for _, w := range waivers {
		switch {
		case w.reason == "":
			out = append(out, Finding{Pos: w.pos, Rule: "waiver",
				Msg: "//lint:ordered waiver needs a justification: //lint:ordered <reason>"})
		case !w.used:
			out = append(out, Finding{Pos: w.pos, Rule: "waiver",
				Msg: fmt.Sprintf("stale //lint:ordered waiver (%q) suppresses nothing; delete it or move it to the violating line", w.reason)})
		}
	}
	sortFindings(out)
	return out
}

// Check loads every classified package matched by the patterns
// (resolved by the go tool from dir) and returns the combined
// findings. A nil, nil return means the tree is clean.
func Check(dir string, patterns []string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, CheckPackage(pkg, Table[pkg.Path])...)
	}
	sortFindings(out)
	return out, nil
}

// sortFindings orders findings by file, line, column, rule — a total
// order, so output is deterministic.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
