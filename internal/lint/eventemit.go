package lint

import (
	"go/ast"
	"go/types"
)

// EventEmit flags construction of sched.Event values outside the emit
// path. Events carry the run's global sequence: Simulator.emit stamps
// At and Seq under the single global counter, which is what keeps the
// event stream byte-identical at any shard count (and what the
// NodeRetired cordon-ordering fix in the autoscaler PR shows is easy
// to violate by hand). An Event literal is therefore only legal as the
// direct argument of an emit-path call — s.emit(Event{...}),
// f.emitFed(Event{...}) — where the stamping happens before any
// observer sees it. Building an Event elsewhere and publishing it
// later invites an unstamped or mis-ordered event; restructure so the
// literal flows straight into emit, or waive with //lint:ordered.
var EventEmit = &Analyzer{
	Name: "eventemit",
	Doc: "flags sched.Event values constructed outside the global-sequence " +
		"emit path (s.emit/f.emitFed call arguments)",
	Run: runEventEmit,
}

// blessedEmit names the emit-path functions allowed to receive a
// freshly built Event literal.
var blessedEmit = map[string]bool{
	"emit":    true,
	"emitFed": true,
}

func runEventEmit(p *Pass) {
	for _, f := range p.Files {
		// Track the node path so a literal can check its parent call.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isSchedEvent(p.Info.TypeOf(cl)) {
				return true
			}
			if inBlessedEmitCall(stack, cl) {
				return true
			}
			p.Reportf(cl.Pos(), "sched.Event constructed outside the emit path; At/Seq stamping under the global sequence only happens inside emit — pass the literal directly to emit/emitFed, or waive with //lint:ordered <reason>")
			return true
		})
	}
}

// isSchedEvent reports whether t is the sched package's Event type.
func isSchedEvent(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Name() == "sched"
}

// inBlessedEmitCall reports whether the literal (possibly behind a
// single &) is a direct argument of a blessed emit call.
func inBlessedEmitCall(stack []ast.Node, cl *ast.CompositeLit) bool {
	// stack[len-1] is cl itself.
	i := len(stack) - 2
	if i < 0 {
		return false
	}
	var arg ast.Expr = cl
	if u, ok := stack[i].(*ast.UnaryExpr); ok && u.X == cl {
		arg = u
		i--
		if i < 0 {
			return false
		}
	}
	call, ok := stack[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, a := range call.Args {
		if a == arg {
			return blessedEmit[calleeName(call)]
		}
	}
	return false
}

// calleeName returns the bare name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
