package pts

import (
	"math"
	"testing"

	"github.com/sjtucitlab/gfs/internal/cluster"
	"github.com/sjtucitlab/gfs/internal/sched"
	"github.com/sjtucitlab/gfs/internal/simclock"
	"github.com/sjtucitlab/gfs/internal/task"
)

func newCtx(cl *cluster.Cluster) *sched.Context {
	return &sched.Context{
		Now:       simclock.Time(simclock.Hour),
		State:     sched.NewState(cl),
		SpotQuota: math.Inf(1),
	}
}

func mkTask(id int, typ task.Type, pods int, g float64) *task.Task {
	tk := task.New(id, typ, pods, g, simclock.Hour)
	tk.CheckpointEvery = 10 * simclock.Minute
	return tk
}

// place runs a task through the scheduler and starts it.
func place(t *testing.T, s *Scheduler, ctx *sched.Context, tk *task.Task) *sched.Decision {
	t.Helper()
	tk.EnterQueue(ctx.Now)
	dec, err := s.Schedule(ctx, tk)
	if err != nil {
		t.Fatalf("schedule task %d: %v", tk.ID, err)
	}
	tk.Start(ctx.Now)
	return dec
}

func TestLessOrdering(t *testing.T) {
	s := New(DefaultConfig())
	hp := mkTask(1, task.HP, 1, 1)
	spot := mkTask(2, task.Spot, 1, 8)
	if !s.Less(hp, spot) || s.Less(spot, hp) {
		t.Fatal("HP must sort before spot regardless of size")
	}
	big := mkTask(3, task.HP, 1, 8)
	small := mkTask(4, task.HP, 1, 1)
	if !s.Less(big, small) {
		t.Fatal("bigger GPU request first")
	}
	early := mkTask(5, task.HP, 1, 4)
	late := mkTask(6, task.HP, 1, 4)
	early.Submit = 0
	late.Submit = 100
	if !s.Less(early, late) {
		t.Fatal("earlier submission first on ties")
	}
	morePods := mkTask(7, task.HP, 4, 1)
	fewerPods := mkTask(8, task.HP, 2, 2)
	// Equal total GPUs: more pods first.
	if !s.Less(morePods, fewerPods) {
		t.Fatal("more pods first on GPU ties")
	}
}

func TestPackingPrefersUsedNode(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 3, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	// Pre-fill node 1 with an HP task.
	seed := mkTask(1, task.HP, 1, 6)
	place(t, s, ctx, seed)
	seedNode := ctx.State.NodesOf(seed)[0].Node

	// New 2-GPU HP pod should pack onto the same node (Score1).
	tk := mkTask(2, task.HP, 1, 2)
	dec := place(t, s, ctx, tk)
	if dec.PodNodes[0] != seedNode {
		t.Fatalf("packed onto node %d, want %d", dec.PodNodes[0].ID, seedNode.ID)
	}
}

func TestCoLocationSeparatesClasses(t *testing.T) {
	// Seed equal occupancy so Score1 (packing) ties and Score2
	// (co-location) decides: node0 hosts HP(4), node1 hosts
	// spot(4). Fresh cluster per class because any placement
	// breaks the packing tie.
	setupCluster := func() (*sched.Context, *Scheduler, *cluster.Cluster) {
		cl := cluster.NewHomogeneous("A100", 2, 8)
		ctx := newCtx(cl)
		s := New(DefaultConfig())
		hpSeed := mkTask(1, task.HP, 1, 4)
		spotSeed := mkTask(2, task.Spot, 1, 4)
		setup := ctx.State.Begin()
		if err := setup.Place(cl.Nodes()[0], hpSeed); err != nil {
			t.Fatal(err)
		}
		if err := setup.Place(cl.Nodes()[1], spotSeed); err != nil {
			t.Fatal(err)
		}
		setup.Commit()
		return ctx, s, cl
	}
	t.Run("hp joins hp node", func(t *testing.T) {
		ctx, s, cl := setupCluster()
		hp2 := mkTask(3, task.HP, 1, 2)
		if got := place(t, s, ctx, hp2).PodNodes[0]; got != cl.Nodes()[0] {
			t.Fatalf("HP co-location: got node %d, want 0", got.ID)
		}
	})
	t.Run("spot joins spot node", func(t *testing.T) {
		ctx, s, cl := setupCluster()
		spot2 := mkTask(4, task.Spot, 1, 2)
		if got := place(t, s, ctx, spot2).PodNodes[0]; got != cl.Nodes()[1] {
			t.Fatalf("spot co-location: got node %d, want 1", got.ID)
		}
	})
}

func TestEvictionAwarenessSteersClasses(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 2, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	hot := cl.Nodes()[0]
	// Heavy recent eviction history on node 0.
	for i := 0; i < 10; i++ {
		hot.RecordEviction(ctx.Now.Add(-10 * simclock.Minute))
	}
	// Spot avoids the hot node (Score3 asymmetric penalty).
	spot := mkTask(1, task.Spot, 1, 4)
	if got := place(t, s, ctx, spot).PodNodes[0]; got == hot {
		t.Fatal("spot should avoid the eviction-prone node")
	}
}

func TestHPPrefersHotNodeOnTies(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 2, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	hot := cl.Nodes()[1]
	for i := 0; i < 10; i++ {
		hot.RecordEviction(ctx.Now.Add(-10 * simclock.Minute))
	}
	// Score1 and Score2 tie (both nodes empty): HP picks the node
	// with the higher eviction history.
	hp := mkTask(1, task.HP, 1, 4)
	if got := place(t, s, ctx, hp).PodNodes[0]; got != hot {
		t.Fatal("HP should prefer the eviction-prone node on ties")
	}
}

func TestCircuitBreakerBlacklistsNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PenaltyM = 100 // make Score3 collapse quickly
	cl := cluster.NewHomogeneous("A100", 2, 8)
	ctx := newCtx(cl)
	s := New(cfg)
	hot := cl.Nodes()[0]
	for i := 0; i < 40; i++ {
		hot.RecordEviction(ctx.Now.Add(-5 * simclock.Minute))
	}
	spot := mkTask(1, task.Spot, 1, 8)
	dec := place(t, s, ctx, spot)
	if dec.PodNodes[0] == hot {
		t.Fatal("hot node should be excluded")
	}
	if _, listed := s.blacklist[hot.ID]; !listed {
		t.Fatal("breaker should blacklist the node")
	}
	// Fill the other node; with only the blacklisted node left,
	// spot scheduling fails even though capacity exists.
	spot2 := mkTask(2, task.Spot, 1, 8)
	if _, err := s.Schedule(ctx, spot2); err == nil {
		t.Fatal("blacklisted node must not take spot tasks")
	}
}

func TestPreemptionEvictsSpotForHP(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 1, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	spot := mkTask(1, task.Spot, 1, 8)
	place(t, s, ctx, spot)
	hp := mkTask(2, task.HP, 1, 8)
	hp.EnterQueue(ctx.Now)
	dec, err := s.Schedule(ctx, hp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Victims) != 1 || dec.Victims[0] != spot {
		t.Fatalf("victims %v", dec.Victims)
	}
	if cl.SpotGPUs("") != 0 || len(dec.PodNodes) != 1 {
		t.Fatal("capacity should move from spot to HP")
	}
}

func TestPreemptionSparesHighWasteVictims(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 1, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	// Two spot tasks: old one has high un-checkpointed waste,
	// young one just checkpointed.
	oldSpot := mkTask(1, task.Spot, 1, 4)
	oldSpot.CheckpointEvery = 2 * simclock.Hour // no checkpoint yet
	oldSpot.EnterQueue(0)
	oldSpot.Start(0) // 1h of un-checkpointed work by ctx.Now
	youngSpot := mkTask(2, task.Spot, 1, 4)
	youngSpot.CheckpointEvery = simclock.Minute
	youngSpot.EnterQueue(0)
	youngSpot.Start(0) // waste ≤ 1 minute
	setup := ctx.State.Begin()
	if err := setup.Place(cl.Nodes()[0], oldSpot); err != nil {
		t.Fatal(err)
	}
	if err := setup.Place(cl.Nodes()[0], youngSpot); err != nil {
		t.Fatal(err)
	}
	setup.Commit()

	// HP needs only 4 GPUs: the low-waste victim should go.
	hp := mkTask(3, task.HP, 1, 4)
	hp.EnterQueue(ctx.Now)
	dec, err := s.Schedule(ctx, hp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Victims) != 1 || dec.Victims[0] != youngSpot {
		t.Fatalf("victims = %v, want the young (low-waste) task", dec.Victims)
	}
}

func TestPreemptionChoosesCheaperNode(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 2, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	// Node 0: one spot task with large waste. Node 1: one spot
	// task just checkpointed.
	costly := mkTask(1, task.Spot, 1, 8)
	costly.CheckpointEvery = 2 * simclock.Hour
	costly.EnterQueue(0)
	costly.Start(0)
	cheap := mkTask(2, task.Spot, 1, 8)
	cheap.CheckpointEvery = simclock.Minute
	cheap.EnterQueue(0)
	cheap.Start(0)
	setup := ctx.State.Begin()
	if err := setup.Place(cl.Nodes()[0], costly); err != nil {
		t.Fatal(err)
	}
	if err := setup.Place(cl.Nodes()[1], cheap); err != nil {
		t.Fatal(err)
	}
	setup.Commit()

	hp := mkTask(3, task.HP, 1, 8)
	hp.EnterQueue(ctx.Now)
	dec, err := s.Schedule(ctx, hp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Victims) != 1 || dec.Victims[0] != cheap {
		t.Fatalf("victims = %v, want the cheap node's task", dec.Victims)
	}
	if dec.PodNodes[0] != cl.Nodes()[1] {
		t.Fatal("HP should land on the cheaper node")
	}
}

func TestSpotNeverPreempts(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 1, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	hp := mkTask(1, task.HP, 1, 8)
	place(t, s, ctx, hp)
	spot := mkTask(2, task.Spot, 1, 8)
	spot.EnterQueue(ctx.Now)
	if _, err := s.Schedule(ctx, spot); err == nil {
		t.Fatal("spot must not preempt anything")
	}
}

func TestHPNeverEvictsHP(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 1, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	hp1 := mkTask(1, task.HP, 1, 8)
	place(t, s, ctx, hp1)
	hp2 := mkTask(2, task.HP, 1, 8)
	hp2.EnterQueue(ctx.Now)
	if _, err := s.Schedule(ctx, hp2); err == nil {
		t.Fatal("HP must not evict HP")
	}
	if hp1.State != task.Running {
		t.Fatal("existing HP task untouched")
	}
}

func TestGangRollbackOnPartialFailure(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 2, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	blocker := mkTask(1, task.HP, 1, 8)
	place(t, s, ctx, blocker)
	// 2×8 gang cannot fit (one node occupied); no partial state
	// may remain.
	gang := mkTask(2, task.HP, 2, 8)
	gang.Gang = true
	gang.EnterQueue(ctx.Now)
	if _, err := s.Schedule(ctx, gang); err == nil {
		t.Fatal("gang should fail")
	}
	if cl.UsedGPUs("") != 8 {
		t.Fatalf("used = %v, want 8 (only the blocker)", cl.UsedGPUs(""))
	}
}

func TestGangPreemptsAcrossNodes(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 2, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	s1 := mkTask(1, task.Spot, 1, 8)
	s2 := mkTask(2, task.Spot, 1, 8)
	for _, sp := range []*task.Task{s1, s2} {
		place(t, s, ctx, sp)
	}
	gang := mkTask(3, task.HP, 2, 8)
	gang.Gang = true
	gang.EnterQueue(ctx.Now)
	dec, err := s.Schedule(ctx, gang)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Victims) != 2 {
		t.Fatalf("victims = %d, want 2", len(dec.Victims))
	}
	if len(dec.PodNodes) != 2 || dec.PodNodes[0] == dec.PodNodes[1] {
		t.Fatal("gang pods should span both nodes")
	}
}

func TestFractionalPodScheduling(t *testing.T) {
	cl := cluster.NewHomogeneous("A10", 2, 1)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	a := mkTask(1, task.Spot, 1, 0.5)
	place(t, s, ctx, a)
	b := mkTask(2, task.Spot, 1, 0.4)
	dec := place(t, s, ctx, b)
	// Packing should co-locate the fractions on one card.
	if dec.PodNodes[0] != ctx.State.NodesOf(a)[0].Node {
		t.Fatal("fractional pods should pack")
	}
}

func TestModelConstraintRespected(t *testing.T) {
	cl := cluster.New()
	cl.AddNode(cluster.NewNode(0, "A10", 8))
	cl.AddNode(cluster.NewNode(1, "A100", 8))
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	tk := mkTask(1, task.HP, 1, 4)
	tk.GPUModel = "A100"
	dec := place(t, s, ctx, tk)
	if dec.PodNodes[0].Model != "A100" {
		t.Fatal("model constraint violated")
	}
}

func TestPreemptionCostFormula(t *testing.T) {
	now := simclock.Time(simclock.Hour)
	v := mkTask(1, task.Spot, 1, 2)
	v.CheckpointEvery = 2 * simclock.Hour
	v.EnterQueue(0)
	v.Start(0) // waste = 2 GPUs × 3600 s = 7200
	got := preemptionCost(90, 10, []*task.Task{v}, 0.5, 100_000, now)
	want := (10.0+1)/(90+10+1) + 0.5*7200/100_000
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	// Empty victim set: only the eviction-history term.
	got = preemptionCost(90, 10, nil, 0.5, 100_000, now)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("no-victim cost = %v, want 0.1", got)
	}
}

func TestRandomPreemptionAblationDiffers(t *testing.T) {
	// With RandomPreemption the scheduler picks victims by ID, not
	// waste, so the high-waste old task gets evicted.
	cfg := DefaultConfig()
	cfg.RandomPreemption = true
	cl := cluster.NewHomogeneous("A100", 1, 8)
	ctx := newCtx(cl)
	s := New(cfg)
	oldSpot := mkTask(1, task.Spot, 1, 4) // lower ID → evicted first
	oldSpot.CheckpointEvery = 2 * simclock.Hour
	oldSpot.EnterQueue(0)
	oldSpot.Start(0)
	youngSpot := mkTask(2, task.Spot, 1, 4)
	youngSpot.CheckpointEvery = simclock.Minute
	youngSpot.EnterQueue(0)
	youngSpot.Start(0)
	setup := ctx.State.Begin()
	if err := setup.Place(cl.Nodes()[0], oldSpot); err != nil {
		t.Fatal(err)
	}
	if err := setup.Place(cl.Nodes()[0], youngSpot); err != nil {
		t.Fatal(err)
	}
	setup.Commit()
	hp := mkTask(3, task.HP, 1, 4)
	hp.EnterQueue(ctx.Now)
	dec, err := s.Schedule(ctx, hp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Victims) != 1 || dec.Victims[0] != oldSpot {
		t.Fatalf("random (ID-order) preemption should evict the old task, got %v", dec.Victims)
	}
}

func TestVictimSetInfeasibleNode(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 1, 8)
	ctx := newCtx(cl)
	s := New(DefaultConfig())
	hp := mkTask(1, task.HP, 1, 6)
	place(t, s, ctx, hp)
	// 4 whole cards needed, only 2 free and no spot to evict.
	if vs := s.victimSet(ctx, cl.Nodes()[0], 4); vs != nil {
		t.Fatalf("victimSet = %v, want nil (infeasible)", vs)
	}
	// 2 needed: feasible with no victims.
	if vs := s.victimSet(ctx, cl.Nodes()[0], 2); vs == nil || len(vs) != 0 {
		t.Fatalf("victimSet = %v, want empty", vs)
	}
}
