// Package pts implements GFS's Preemptive Task Scheduler (§3.4): the
// non-preemptive path with its three scoring criteria — GPU packing
// (Eq. 13), homogeneous co-location (Eq. 14) and eviction awareness
// with a circuit breaker (Eqs. 15–16) — and the preemptive path with
// waste-aware victim selection (Eq. 17, Alg. 2) and minimum-cost node
// choice (Eq. 19).
package pts

import (
	"errors"
	"math"
	"sort"

	"github.com/sjtucitlab/gfs/internal/cluster"
	"github.com/sjtucitlab/gfs/internal/sched"
	"github.com/sjtucitlab/gfs/internal/simclock"
	"github.com/sjtucitlab/gfs/internal/task"
)

// ErrUnschedulable is returned when no placement exists.
var ErrUnschedulable = errors.New("pts: no feasible placement")

// Config holds the PTS parameters (Table 4).
type Config struct {
	// Gamma balances short- vs long-term eviction history (Eq. 15).
	Gamma float64
	// ShortWindow and LongWindow are the eviction history horizons
	// (1 h and 24 h in production).
	ShortWindow, LongWindow simclock.Duration
	// PenaltyM is the eviction penalty intensity m (Eq. 16).
	PenaltyM float64
	// Beta weights the usage-impact term of the preemption cost
	// (Eq. 19).
	Beta float64
	// BreakerDuration is how long a node stays blacklisted for
	// spot placements after its spot Score3 reaches 0.
	BreakerDuration simclock.Duration
	// DisableCoLocation and DisableEvictionAware support the GFS-s
	// ablation (packing only).
	DisableCoLocation    bool
	DisableEvictionAware bool
	// RandomPreemption replaces waste-aware victim selection with
	// arbitrary choice (GFS-p ablation).
	RandomPreemption bool
	// CoLocationFirst promotes the co-location criterion (Eq. 14)
	// above packing in the lexicographic node order, hardening the
	// HP/spot class segregation.
	CoLocationFirst bool
}

// DefaultConfig returns Table 4's settings.
func DefaultConfig() Config {
	return Config{
		Gamma:           0.8,
		ShortWindow:     simclock.Hour,
		LongWindow:      24 * simclock.Hour,
		PenaltyM:        3,
		Beta:            0.5,
		BreakerDuration: simclock.Hour,
	}
}

// Scheduler is the PTS implementation of sched.Scheduler.
type Scheduler struct {
	cfg       Config
	blacklist map[int]simclock.Time // node ID → blacklisted until

	// scoreCache memoizes the occupancy-derived criteria (Eqs. 13–14)
	// per node, keyed on the node's occupancy version: a scheduling
	// pass re-scores only the nodes whose free capacity changed since
	// the last look (its dirty set) instead of recomputing every node
	// for every pod. Indexed by node ID; grown on demand (pre-grown
	// before a sharded scan so ranges write disjoint slots).
	scoreCache []cachedScore

	// Per-shard scratch for sharded scans (see Context.Par): local
	// argmax winners, deferred breaker trips, and preemption
	// candidates, reused across scans.
	parBest  []scored
	parTrips [][]*cluster.Node
	parPre   []preemptCand
}

// cachedScore holds a node's packing score (Eq. 13) and both class
// variants of the co-location score (Eq. 14). version stores the
// node's occupancy version plus one, so the zero value always reads
// as stale.
type cachedScore struct {
	version    uint64
	s1         float64
	s2HP, s2SP float64
}

// New creates a PTS scheduler.
func New(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg, blacklist: make(map[int]simclock.Time)}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "GFS" }

// Less implements the queue order of §3.4.2: HP before spot, then
// larger GPU requests, more pods, earlier submissions.
func (s *Scheduler) Less(a, b *task.Task) bool {
	if a.Type != b.Type {
		return a.Type == task.HP
	}
	if a.TotalGPUs() != b.TotalGPUs() {
		return a.TotalGPUs() > b.TotalGPUs()
	}
	if a.Pods != b.Pods {
		return a.Pods > b.Pods
	}
	return a.Submit < b.Submit
}

// Schedule implements Algorithm 3: non-preemptive first; for HP tasks
// that fail, preemptive scheduling.
func (s *Scheduler) Schedule(ctx *sched.Context, tk *task.Task) (*sched.Decision, error) {
	if dec, err := s.nonPreemptive(ctx, tk); err == nil {
		return dec, nil
	}
	if tk.Type == task.HP {
		return s.preemptive(ctx, tk)
	}
	return nil, ErrUnschedulable
}

// scores evaluates the three criteria for a node. The occupancy
// criteria (Eqs. 13–14) are pure functions of the node's allocation
// state, served from the version-keyed cache when the node is clean;
// eviction awareness (Eq. 16) depends on the clock and is always
// evaluated fresh.
func (s *Scheduler) scores(ctx *sched.Context, n *cluster.Node, tk *task.Task) (s1, s2, s3 float64) {
	for n.ID >= len(s.scoreCache) {
		s.scoreCache = append(s.scoreCache, cachedScore{})
	}
	c := &s.scoreCache[n.ID]
	if c.version != n.Version()+1 {
		total := float64(n.Capacity())
		// Criterion 1 (Eq. 13): prefer packed nodes.
		c.s1 = 1 - n.IdleGPUs()/total
		// Criterion 2 (Eq. 14): homogeneous co-location.
		c.s2HP = n.HPGPUs() / total
		c.s2SP = n.SpotGPUs() / total
		c.version = n.Version() + 1
	}
	s1 = c.s1
	if !s.cfg.DisableCoLocation {
		if tk.Type == task.HP {
			s2 = c.s2HP
		} else {
			s2 = c.s2SP
		}
	}
	// Criterion 3 (Eq. 16): eviction awareness with asymmetric
	// penalties.
	if !s.cfg.DisableEvictionAware {
		e := n.WeightedEvictionRate(ctx.Now, s.cfg.Gamma, s.cfg.ShortWindow, s.cfg.LongWindow)
		p := 0.01 * s.cfg.PenaltyM * e
		if tk.Type == task.HP {
			s3 = math.Min(p, 1)
		} else {
			s3 = math.Max(1-p, 0)
		}
	} else {
		s3 = 0.5
	}
	return s1, s2, s3
}

// spotBlocked reports whether the circuit breaker blacklists n for
// spot placement at now.
func (s *Scheduler) spotBlocked(n *cluster.Node, now simclock.Time) bool {
	until, ok := s.blacklist[n.ID]
	return ok && now < until
}

// tripBreaker blacklists a node whose spot Score3 collapsed to 0.
func (s *Scheduler) tripBreaker(n *cluster.Node, now simclock.Time) {
	s.blacklist[n.ID] = now.Add(s.cfg.BreakerDuration)
}

type scored struct {
	node       *cluster.Node
	s1, s2, s3 float64
}

// nonPreemptive implements Algorithm 1.
func (s *Scheduler) nonPreemptive(ctx *sched.Context, tk *task.Task) (*sched.Decision, error) {
	txn := ctx.State.Begin()
	for pod := 0; pod < tk.Pods; pod++ {
		best := s.bestNode(ctx, tk)
		if best == nil {
			txn.Rollback()
			return nil, ErrUnschedulable
		}
		if err := txn.Place(best, tk); err != nil {
			txn.Rollback()
			return nil, ErrUnschedulable
		}
	}
	return txn.Commit(), nil
}

// bestNode filters and scores candidates for one pod, keeping the
// single maximum of the lexicographic (score1, score2, score3,
// lowest-ID) order in one pass. The comparator is exactly the one the
// former sort used, and node-ID tie-breaking makes it a total order,
// so the argmax equals the sorted head — which is also why the
// sharded fan-out below can scan contiguous ranges independently and
// reduce their winners in shard order without changing the answer.
func (s *Scheduler) bestNode(ctx *sched.Context, tk *task.Task) *cluster.Node {
	nodes := ctx.State.Cluster.NodesOfModel(tk.GPUModel)
	if n, ok := s.bestNodeSharded(ctx, tk, nodes); ok {
		return n
	}
	var best scored
	_, trips, _ := s.scratch(1)
	trips[0] = s.scanBest(ctx, tk, nodes, &best, trips[0][:0])
	s.applyTrips(ctx, trips)
	return best.node
}

// scanBest runs the Algorithm 1 candidate loop over one node range,
// updating *best under the scoredBetter order. Nodes whose spot
// Score3 collapsed are appended to trips instead of entering the
// breaker blacklist immediately: within a single scan a node's
// blacklist entry can never affect any other node (each node is
// visited exactly once and trip implies skip), so deferring the map
// writes to the post-scan barrier is observationally identical in
// serial and makes the parallel ranges write-free on shared state.
// The scoreCache writes are per-node slots pre-grown by the sharded
// caller, hence disjoint between ranges.
func (s *Scheduler) scanBest(ctx *sched.Context, tk *task.Task, nodes []*cluster.Node, best *scored, trips []*cluster.Node) []*cluster.Node {
	colocFirst := s.cfg.CoLocationFirst
	for _, n := range nodes {
		if !n.CanFitPod(tk) {
			continue
		}
		s1, s2, s3 := s.scores(ctx, n, tk)
		if tk.Type == task.Spot && !s.cfg.DisableEvictionAware && tk.GPUsPerPod >= 1 {
			// Alg. 1 line 7: whole-card spot pods require
			// Score3 > 0; tripping nodes enter the breaker
			// blacklist.
			if s3 <= 0 {
				trips = append(trips, n)
				continue
			}
			if s.spotBlocked(n, ctx.Now) {
				continue
			}
		}
		cand := scored{node: n, s1: s1, s2: s2, s3: s3}
		if best.node == nil || scoredBetter(&cand, best, colocFirst) {
			*best = cand
		}
	}
	return trips
}

// applyTrips commits the deferred breaker trips in shard order. Every
// trip in one scan stamps the same expiry and distinct nodes, so the
// resulting blacklist is identical to the serial scan's.
func (s *Scheduler) applyTrips(ctx *sched.Context, trips [][]*cluster.Node) {
	for _, ts := range trips {
		for _, n := range ts {
			s.tripBreaker(n, ctx.Now)
		}
	}
}

// scratch ensures the per-shard result and trip buffers cover shards
// slots and returns them truncated to that size.
func (s *Scheduler) scratch(shards int) ([]scored, [][]*cluster.Node, []preemptCand) {
	if cap(s.parBest) < shards {
		s.parBest = make([]scored, shards)
		s.parTrips = make([][]*cluster.Node, shards)
		s.parPre = make([]preemptCand, shards)
	}
	return s.parBest[:shards], s.parTrips[:shards], s.parPre[:shards]
}

// bestNodeSharded fans the Algorithm 1 scan over the shard workers.
// It reports ok=false when the run is unsharded or the candidate set
// is too small to pay for the barrier, in which case the caller runs
// the serial loop.
func (s *Scheduler) bestNodeSharded(ctx *sched.Context, tk *task.Task, nodes []*cluster.Node) (*cluster.Node, bool) {
	par := ctx.Par
	if par == nil || len(nodes) == 0 {
		return nil, false
	}
	shards := par.Shards()
	best, trips, _ := s.scratch(shards)
	for i := range best {
		best[i] = scored{}
		trips[i] = trips[i][:0]
	}
	s.growCache(nodes)
	if !par.Scan(len(nodes), func(shard, lo, hi int) {
		var b scored
		trips[shard] = s.scanBest(ctx, tk, nodes[lo:hi], &b, trips[shard])
		best[shard] = b
	}) {
		return nil, false
	}
	s.applyTrips(ctx, trips)
	colocFirst := s.cfg.CoLocationFirst
	var win scored
	for i := range best {
		if best[i].node == nil {
			continue
		}
		if win.node == nil || scoredBetter(&best[i], &win, colocFirst) {
			win = best[i]
		}
	}
	return win.node, true
}

// growCache pre-extends the score cache to cover every candidate's
// node ID, so the parallel ranges only write disjoint, pre-existing
// slots and never trigger the append-grow path concurrently.
func (s *Scheduler) growCache(nodes []*cluster.Node) {
	maxID := 0
	for _, n := range nodes {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	for maxID >= len(s.scoreCache) {
		s.scoreCache = append(s.scoreCache, cachedScore{})
	}
}

// scoredBetter reports whether a precedes b in the node preference
// order.
func scoredBetter(a, b *scored, colocFirst bool) bool {
	first, second := a.s1, a.s2
	firstB, secondB := b.s1, b.s2
	if colocFirst {
		first, second = a.s2, a.s1
		firstB, secondB = b.s2, b.s1
	}
	if first != firstB {
		return first > firstB
	}
	if second != secondB {
		return second > secondB
	}
	if a.s3 != b.s3 {
		return a.s3 > b.s3
	}
	return a.node.ID < b.node.ID
}

// preemptive implements Algorithm 2: per pod, evaluate every node's
// minimal victim set (descending-waste trimming) and pick the node
// with the lowest preemption cost (Eq. 19).
func (s *Scheduler) preemptive(ctx *sched.Context, tk *task.Task) (*sched.Decision, error) {
	txn := ctx.State.Begin()
	evicted := 0
	for pod := 0; pod < tk.Pods; pod++ {
		node, victims := s.bestPreemption(ctx, tk, evicted)
		if node == nil {
			txn.Rollback()
			return nil, ErrUnschedulable
		}
		for _, v := range victims {
			txn.Evict(v)
			evicted++
		}
		if err := txn.Place(node, tk); err != nil {
			txn.Rollback()
			return nil, ErrUnschedulable
		}
	}
	return txn.Commit(), nil
}

// need returns the whole-card requirement of one pod.
func podNeed(tk *task.Task) int {
	if tk.GPUsPerPod < 1 {
		return 1
	}
	return int(tk.GPUsPerPod)
}

// preemptCand is one node's preemption proposal: its trimmed victim
// set and Eq. 19 cost (ignored under the RandomPreemption ablation).
type preemptCand struct {
	node    *cluster.Node
	victims []*task.Task
	cost    float64
}

// bestPreemption evaluates candidate nodes for one pod and returns
// the minimum-cost node with its trimmed victim set. evictedSoFar
// feeds the |T_k| term so multi-pod placements account for earlier
// victims.
func (s *Scheduler) bestPreemption(ctx *sched.Context, tk *task.Task, evictedSoFar int) (*cluster.Node, []*task.Task) {
	nodes := ctx.State.Cluster.NodesOfModel(tk.GPUModel)
	if cand, ok := s.bestPreemptionSharded(ctx, tk, evictedSoFar, nodes); ok {
		return cand.node, cand.victims
	}
	cand := s.scanPreempt(ctx, tk, evictedSoFar, nodes)
	return cand.node, cand.victims
}

// scanPreempt runs the Algorithm 2 node loop over one range. Victim
// sets are pure functions of node state, so ranges can be scanned
// concurrently; the cost comparator's node-ID tie-break makes the
// argmin a total order, so a shard-ordered reduce of range winners
// equals the full serial scan. Under RandomPreemption the range
// winner is its first feasible node, and the reduce takes the lowest
// shard's — the global first feasible, matching the serial early
// return (which merely avoided costing the rest).
func (s *Scheduler) scanPreempt(ctx *sched.Context, tk *task.Task, evictedSoFar int, nodes []*cluster.Node) preemptCand {
	need := podNeed(tk)
	elapsed := ctx.ElapsedSeconds()
	cand := preemptCand{cost: math.Inf(1)}
	for _, n := range nodes {
		victims := s.victimSet(ctx, n, need)
		if victims == nil {
			continue
		}
		if s.cfg.RandomPreemption {
			// GFS-p ablation: arbitrary node choice — take the
			// first feasible node without costing it.
			return preemptCand{node: n, victims: victims}
		}
		// Eq. 18's usage impact normalizes by S_k·T, "the total
		// execution time of GPUs in node n_k": per-node capacity
		// times elapsed time. A cluster-wide denominator would
		// shrink the waste term to noise and let the victim-count
		// term steer preemption onto huge gang tasks.
		gpuSeconds := float64(n.Capacity()) * elapsed
		cost := preemptionCost(ctx.G, ctx.F+evictedSoFar, victims, s.cfg.Beta, gpuSeconds, ctx.Now)
		if cost < cand.cost || (cost == cand.cost && cand.node != nil && n.ID < cand.node.ID) {
			cand = preemptCand{node: n, victims: victims, cost: cost}
		}
	}
	return cand
}

// bestPreemptionSharded fans the Algorithm 2 scan over the shard
// workers, reducing range winners in shard order with the serial
// comparator. ok=false means the caller should scan serially.
func (s *Scheduler) bestPreemptionSharded(ctx *sched.Context, tk *task.Task, evictedSoFar int, nodes []*cluster.Node) (preemptCand, bool) {
	par := ctx.Par
	if par == nil || len(nodes) == 0 {
		return preemptCand{}, false
	}
	shards := par.Shards()
	_, _, pre := s.scratch(shards)
	for i := range pre {
		pre[i] = preemptCand{cost: math.Inf(1)}
	}
	if !par.Scan(len(nodes), func(shard, lo, hi int) {
		pre[shard] = s.scanPreempt(ctx, tk, evictedSoFar, nodes[lo:hi])
	}) {
		return preemptCand{}, false
	}
	win := preemptCand{cost: math.Inf(1)}
	for i := range pre {
		if pre[i].node == nil {
			continue
		}
		if s.cfg.RandomPreemption {
			// Lowest shard with a feasible node holds the global
			// first feasible.
			return pre[i], true
		}
		if pre[i].cost < win.cost || (pre[i].cost == win.cost && win.node != nil && pre[i].node.ID < win.node.ID) {
			win = pre[i]
		}
	}
	return win, true
}

// victimSet returns the minimal victim set on n freeing need whole
// cards, or nil when even evicting every spot task is insufficient.
// Victims are trimmed in descending waste order (Alg. 2 lines 8–11)
// so high-waste tasks survive preemption when possible.
func (s *Scheduler) victimSet(ctx *sched.Context, n *cluster.Node, need int) []*task.Task {
	spot := n.SpotTasks()
	if len(spot) == 0 {
		if n.WholeFreeGPUs() >= need {
			return []*task.Task{}
		}
		return nil
	}
	all := make(map[int]bool, len(spot))
	for _, v := range spot {
		all[v.ID] = true
	}
	if n.WholeFreeGPUsExcluding(all) < need {
		return nil
	}
	if s.cfg.RandomPreemption {
		// GFS-p ablation: accumulate victims in arbitrary (ID)
		// order until the requirement is met, waste-blind.
		victimSet := make(map[int]bool)
		var out []*task.Task
		for _, v := range spot {
			victimSet[v.ID] = true
			out = append(out, v)
			if n.WholeFreeGPUsExcluding(victimSet) >= need {
				return out
			}
		}
		return out
	}
	// Waste-aware trim (Alg. 2): spare the highest-waste victims
	// first.
	order := append([]*task.Task(nil), spot...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := order[i].Waste(ctx.Now), order[j].Waste(ctx.Now)
		if wi != wj {
			return wi > wj
		}
		return order[i].ID < order[j].ID
	})
	for _, v := range order {
		all[v.ID] = false
		if n.WholeFreeGPUsExcluding(all) < need {
			all[v.ID] = true
		}
	}
	var out []*task.Task
	for _, v := range spot {
		if all[v.ID] {
			out = append(out, v)
		}
	}
	return out
}

// preemptionCost implements the simplified Eq. (19):
//
//	cost(n) = (F+|T|)/(G+F+|T|) + β·Σϑ/(Σ S·T)
func preemptionCost(g, f int, victims []*task.Task, beta, gpuSeconds float64, now simclock.Time) float64 {
	t := float64(len(victims))
	denom := float64(g+f) + t
	evictTerm := 0.0
	if denom > 0 {
		evictTerm = (float64(f) + t) / denom
	}
	wasteSum := 0.0
	for _, v := range victims {
		wasteSum += v.Waste(now)
	}
	return evictTerm + beta*wasteSum/gpuSeconds
}
