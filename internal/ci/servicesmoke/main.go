// Command servicesmoke is CI's end-to-end smoke test for the gfsd
// daemon: it builds the real gfsd and gfsim binaries, starts the
// daemon on a loopback port, uploads a generated trace, polls the
// session to completion, and fails unless the served JSONL report is
// byte-identical to what `gfsim -trace ... -scheduler yarn -report
// jsonl` prints for the same spec — the service layer must be a pure
// transport around the engine, never a fork of it. It also checks
// /metrics for the daemon counters and the per-session report
// snapshot, then exercises the SIGTERM drain path.
//
// Usage (from the repository root):
//
//	go run ./internal/ci/servicesmoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	gfs "github.com/sjtucitlab/gfs"
	"github.com/sjtucitlab/gfs/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servicesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servicesmoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servicesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	for _, b := range []struct{ name, pkg string }{
		{"gfsd", "./cmd/gfsd"},
		{"gfsim", "./cmd/gfsim"},
	} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(tmp, b.name), b.pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("build %s: %w", b.pkg, err)
		}
	}

	// The shared workload: a generated small-scale trace, written
	// sorted by submit time so the file replays identically through
	// both the CLI and the upload path.
	tasks := experiments.SmallScale().Trace(1)
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Submit < tasks[j].Submit })
	tracePath := filepath.Join(tmp, "trace.jsonl")
	traceFile, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := gfs.WriteTraceJSONL(traceFile, tasks); err != nil {
		return err
	}
	if err := traceFile.Close(); err != nil {
		return err
	}

	// Grab a free loopback port for the daemon. (Closing the probe
	// listener races other processes for the port, which is fine for
	// a CI smoke.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()

	daemon := exec.Command(filepath.Join(tmp, "gfsd"), "-addr", addr, "-workers", "2")
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start gfsd: %w", err)
	}
	defer daemon.Process.Kill()
	base := "http://" + addr
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	// Upload the trace (buffered, format auto-detected) with the run
	// spec in the query string.
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/sessions?scheduler=yarn", "application/x-ndjson", bytes.NewReader(trace))
	if err != nil {
		return err
	}
	accepted, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST /v1/sessions: %s: %s", resp.Status, bytes.TrimSpace(accepted))
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(accepted, &st); err != nil {
		return err
	}
	fmt.Printf("servicesmoke: session %s accepted (%s)\n", st.ID, st.State)

	// Poll to completion.
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != "done" {
		switch st.State {
		case "failed", "cancelled":
			return fmt.Errorf("session %s ended %s: %s", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session %s still %s at deadline", st.ID, st.State)
		}
		time.Sleep(100 * time.Millisecond)
		if err := getJSON(base+"/v1/sessions/"+st.ID, &st); err != nil {
			return err
		}
	}

	served, err := getBody(base + "/v1/sessions/" + st.ID + "/report?format=jsonl")
	if err != nil {
		return err
	}

	// The CLI reference: gfsim on the same trace file prints its
	// human summary, then the JSONL report — the JSON lines must
	// match the served report byte for byte.
	cli := exec.Command(filepath.Join(tmp, "gfsim"),
		"-trace", tracePath, "-scheduler", "yarn", "-report", "jsonl")
	cli.Stderr = os.Stderr
	out, err := cli.Output()
	if err != nil {
		return fmt.Errorf("gfsim reference run: %w", err)
	}
	var want bytes.Buffer
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "{") {
			want.WriteString(line)
			want.WriteByte('\n')
		}
	}
	if want.Len() == 0 {
		return fmt.Errorf("gfsim printed no JSONL records:\n%s", out)
	}
	if !bytes.Equal(served, want.Bytes()) {
		return fmt.Errorf("served report diverges from gfsim (-report jsonl):\n--- gfsd (%d bytes)\n%s--- gfsim (%d bytes)\n%s",
			len(served), served, want.Len(), want.String())
	}
	fmt.Printf("servicesmoke: report parity holds (%d bytes, %d records)\n",
		want.Len(), bytes.Count(want.Bytes(), []byte{'\n'}))

	// Daemon metrics must carry both the gfsd counters and the
	// per-session report snapshot.
	metrics, err := getBody(base + "/metrics")
	if err != nil {
		return err
	}
	for _, needle := range []string{
		"gfsd_sessions_started_total 1",
		`gfsd_sessions_finished_total{state="done"} 1`,
		`session="` + st.ID + `"`,
		"gfs_allocation_rate{",
	} {
		if !bytes.Contains(metrics, []byte(needle)) {
			return fmt.Errorf("/metrics missing %q:\n%s", needle, metrics)
		}
	}

	// Graceful drain: SIGTERM must stop the daemon cleanly.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("gfsd exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("gfsd did not exit within 30s of SIGTERM")
	}
	return nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gfsd not healthy after %v: %v", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getBody(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

func getJSON(url string, v any) error {
	body, err := getBody(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
