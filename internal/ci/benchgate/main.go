// Command benchgate is the CI benchmark-regression gate. It parses
// `go test -bench` output (typically BenchmarkSim and
// BenchmarkFederation at -benchtime=100x -count=6), takes the median
// ns/op per benchmark, writes the result as a JSON artifact, and —
// when given a committed baseline — fails if any median regressed
// beyond the threshold.
//
// Usage:
//
//	go test -run XXX -bench 'BenchmarkSim$|BenchmarkFederation$' \
//	    -benchtime=100x -count=6 . | tee bench.txt
//	go run ./internal/ci/benchgate -input bench.txt \
//	    -out BENCH_$(git rev-parse --short HEAD).json \
//	    -baseline BENCH_baseline.json \
//	    -speedup 'BenchmarkSim10KParallel/BenchmarkSim10K=1.5'
//
// -speedup asserts a within-run ratio (so it needs no baseline and is
// immune to hardware drift): the first benchmark's median ns/op must
// beat the second's by the given factor. On runners with ≤2 cores the
// assertion demotes to a warning — a sharded run cannot outpace its
// serial twin without cores to spread over.
//
// To refresh the committed baseline after an intentional performance
// change (or to seed it for a new runner class), download the
// BENCH_<sha>.json artifact from a green bench-regression run and
// commit it as BENCH_baseline.json. Medians are only comparable on
// similar hardware, so each report records the CPU model it was
// measured on and the gate compares only when the models match —
// a baseline from foreign hardware produces a loud warning (and a
// passing exit) instead of a hardware-delta verdict.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Report is the persisted artifact: per-benchmark medians plus the
// environment they were measured in.
type Report struct {
	SHA  string `json:"sha,omitempty"`
	GoOS string `json:"goos"`
	// CPU is the processor model the run was measured on, as printed
	// by `go test -bench` (its `cpu:` header); absolute ns/op medians
	// are only comparable between matching CPUs.
	CPU        string               `json:"cpu,omitempty"`
	GoArch     string               `json:"goarch"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// BenchStat summarizes one benchmark's repeated runs. Allocation
// medians are present only for benchmarks that report them (via
// -benchmem or b.ReportAllocs); unlike ns/op they are hardware-
// independent, so the allocs gate arms even across CPU models.
type BenchStat struct {
	MedianNsOp      float64   `json:"median_ns_op"`
	SamplesNsOp     []float64 `json:"samples_ns_op"`
	MedianAllocsOp  float64   `json:"median_allocs_op,omitempty"`
	SamplesAllocsOp []float64 `json:"samples_allocs_op,omitempty"`
}

func main() {
	input := flag.String("input", "", "file holding `go test -bench` output (default stdin)")
	out := flag.String("out", "", "write the parsed report to this JSON file")
	baseline := flag.String("baseline", "", "compare against this committed baseline report")
	threshold := flag.Float64("threshold", 0.15, "allowed median regression fraction")
	speedup := flag.String("speedup", "", "assert `Fast/Slow=ratio`: Fast's median ns/op beats Slow's by ratio (warn-only on ≤2-core runners)")
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "commit the report describes")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}
	report.SHA = *sha

	for _, name := range sortedNames(report.Benchmarks) {
		st := report.Benchmarks[name]
		fmt.Printf("%-24s median %12.0f ns/op over %d runs\n",
			name, st.MedianNsOp, len(st.SamplesNsOp))
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		var regressions []string
		if comparable(base, report) {
			regressions = gate(base, report, *threshold)
		} else {
			fmt.Fprintf(os.Stderr,
				"benchgate: WARNING: baseline measured on %q/%s, this run on %q/%s — "+
					"absolute ns/op medians are not comparable across hardware; time gate skipped. "+
					"Re-seed BENCH_baseline.json from this run's artifact to arm it.\n",
				base.CPU, base.GoArch, report.CPU, report.GoArch)
		}
		// Allocation counts are hardware-independent, so the allocs
		// gate arms regardless of the CPU match.
		regressions = append(regressions, gateAllocs(base, report, *threshold)...)
		if len(regressions) > 0 {
			for _, msg := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION:", msg)
			}
			os.Exit(1)
		}
		fmt.Printf("bench gate passed (threshold %.0f%%)\n", 100**threshold)
	}

	if *speedup != "" {
		msgs, err := gateSpeedup(report, *speedup)
		if err != nil {
			fatal(err)
		}
		if len(msgs) > 0 {
			// A parallel benchmark cannot beat its serial twin without
			// cores to run on, so starved runners only warn.
			if runtime.NumCPU() <= 2 {
				for _, msg := range msgs {
					fmt.Fprintf(os.Stderr,
						"benchgate: WARNING (speedup gate disarmed on %d-core runner): %s\n",
						runtime.NumCPU(), msg)
				}
			} else {
				for _, msg := range msgs {
					fmt.Fprintln(os.Stderr, "REGRESSION:", msg)
				}
				os.Exit(1)
			}
		} else {
			fmt.Printf("speedup gate passed (%s)\n", *speedup)
		}
	}
}

// gateSpeedup checks a "Fast/Slow=ratio" assertion against the current
// report: Fast's median ns/op must be at least ratio times lower than
// Slow's. A benchmark missing from the report fails the assertion — a
// silently dropped benchmark must not pass as "fast enough". The spec
// itself being malformed is an error, not a gate failure.
func gateSpeedup(cur *Report, spec string) ([]string, error) {
	names, ratioStr, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("bad -speedup %q: want Fast/Slow=ratio", spec)
	}
	fast, slow, ok := strings.Cut(names, "/")
	if !ok || fast == "" || slow == "" {
		return nil, fmt.Errorf("bad -speedup %q: want Fast/Slow=ratio", spec)
	}
	want, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil || want <= 0 {
		return nil, fmt.Errorf("bad -speedup ratio %q: want a positive number", ratioStr)
	}
	f, fok := cur.Benchmarks[fast]
	s, sok := cur.Benchmarks[slow]
	if !fok || !sok {
		var out []string
		if !fok {
			out = append(out, fmt.Sprintf("%s: required by -speedup but missing from this run", fast))
		}
		if !sok {
			out = append(out, fmt.Sprintf("%s: required by -speedup but missing from this run", slow))
		}
		return out, nil
	}
	if f.MedianNsOp <= 0 {
		return nil, fmt.Errorf("%s: non-positive median ns/op", fast)
	}
	got := s.MedianNsOp / f.MedianNsOp
	status := "ok"
	var out []string
	if got < want {
		status = "FAIL"
		out = append(out, fmt.Sprintf("%s is %.2fx faster than %s, want >= %.2fx",
			fast, got, slow, want))
	}
	fmt.Printf("%-24s %12.0f ns/op vs %s %0.f (%.2fx, want %.2fx) %s\n",
		fast, f.MedianNsOp, slow, s.MedianNsOp, got, want, status)
	return out, nil
}

// parseBench extracts ns/op samples from `go test -bench` output.
// Lines look like:
//
//	BenchmarkSim-8   100   2274931 ns/op   48.38 allocPct
//
// The -N GOMAXPROCS suffix is stripped so reports compare across
// runner shapes.
func parseBench(r io.Reader) (*Report, error) {
	report := &Report{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Benchmarks: map[string]BenchStat{},
	}
	samples := map[string][]float64{}
	allocSamples := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			report.CPU = strings.TrimSpace(cpu)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx, allocIdx := -1, -1
		for i, f := range fields {
			switch f {
			case "ns/op":
				nsIdx = i - 1
			case "allocs/op":
				allocIdx = i - 1
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		samples[name] = append(samples[name], ns)
		if allocIdx > 0 {
			if al, err := strconv.ParseFloat(fields[allocIdx], 64); err == nil {
				allocSamples[name] = append(allocSamples[name], al)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, ss := range samples {
		st := BenchStat{MedianNsOp: median(ss), SamplesNsOp: ss}
		if as := allocSamples[name]; len(as) > 0 {
			st.MedianAllocsOp = median(as)
			st.SamplesAllocsOp = as
		}
		report.Benchmarks[name] = st
	}
	return report, nil
}

// median returns the middle value (mean of the middle two for even
// counts) of a non-empty sample set.
func median(ss []float64) float64 {
	s := append([]float64(nil), ss...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gate compares each baseline benchmark's median against the current
// report and returns one message per regression beyond the threshold.
// Benchmarks missing from the current run fail the gate too — a
// silently dropped benchmark must not pass as "no regression".
func gate(base, cur *Report, threshold float64) []string {
	var out []string
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but not in this run", name))
			continue
		}
		if b.MedianNsOp <= 0 {
			continue
		}
		ratio := c.MedianNsOp / b.MedianNsOp
		status := "ok"
		if ratio > 1+threshold {
			status = "FAIL"
			out = append(out, fmt.Sprintf("%s: median %0.f ns/op vs baseline %0.f (%+.1f%%, allowed +%.0f%%)",
				name, c.MedianNsOp, b.MedianNsOp, 100*(ratio-1), 100*threshold))
		}
		fmt.Printf("%-24s %12.0f → %12.0f ns/op (%+6.1f%%) %s\n",
			name, b.MedianNsOp, c.MedianNsOp, 100*(ratio-1), status)
	}
	return out
}

// gateAllocs compares allocs/op medians for every benchmark both
// reports carry allocation counts for, at the same threshold as the
// time gate. A benchmark that stopped reporting allocations fails —
// dropping b.ReportAllocs must not pass as "no regression".
func gateAllocs(base, cur *Report, threshold float64) []string {
	var out []string
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		if len(b.SamplesAllocsOp) == 0 {
			continue
		}
		c, ok := cur.Benchmarks[name]
		if !ok || len(c.SamplesAllocsOp) == 0 {
			out = append(out, fmt.Sprintf("%s: baseline has allocs/op but this run reports none", name))
			continue
		}
		if b.MedianAllocsOp <= 0 {
			continue
		}
		ratio := c.MedianAllocsOp / b.MedianAllocsOp
		status := "ok"
		if ratio > 1+threshold {
			status = "FAIL"
			out = append(out, fmt.Sprintf("%s: median %0.f allocs/op vs baseline %0.f (%+.1f%%, allowed +%.0f%%)",
				name, c.MedianAllocsOp, b.MedianAllocsOp, 100*(ratio-1), 100*threshold))
		}
		fmt.Printf("%-24s %12.0f → %12.0f allocs/op (%+6.1f%%) %s\n",
			name, b.MedianAllocsOp, c.MedianAllocsOp, 100*(ratio-1), status)
	}
	return out
}

// comparable reports whether two reports were measured on matching
// hardware (same CPU model and architecture), the precondition for
// comparing absolute ns/op medians. A baseline without a recorded CPU
// (hand-written, or from a pre-CPU-field run) never matches.
func comparable(base, cur *Report) bool {
	return base.CPU != "" && base.CPU == cur.CPU && base.GoArch == cur.GoArch
}

func sortedNames(m map[string]BenchStat) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
