package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/sjtucitlab/gfs
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSim-8        	     100	   2000000 ns/op	        48.38 allocPct
BenchmarkSim-8        	     100	   2200000 ns/op	        48.38 allocPct
BenchmarkSim-8        	     100	   1800000 ns/op	        48.38 allocPct
BenchmarkFederation-8 	     100	   1000000 ns/op	      1753 goodputGPUh	         3.000 migrations
BenchmarkFederation-8 	     100	   1100000 ns/op	      1753 goodputGPUh	         3.000 migrations
BenchmarkReport-8     	     100	   3000000 ns/op	        48.38 allocPct	  524288 B/op	    5000 allocs/op
BenchmarkReport-8     	     100	   3100000 ns/op	        48.38 allocPct	  524288 B/op	    5200 allocs/op
BenchmarkReport-8     	     100	   2900000 ns/op	        48.38 allocPct	  524288 B/op	    4900 allocs/op
PASS
ok  	github.com/sjtucitlab/gfs	1.234s
`

func TestParseBenchMedians(t *testing.T) {
	r, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	sim, ok := r.Benchmarks["BenchmarkSim"]
	if !ok {
		t.Fatalf("BenchmarkSim missing (GOMAXPROCS suffix not stripped?): %v", r.Benchmarks)
	}
	if sim.MedianNsOp != 2000000 {
		t.Fatalf("BenchmarkSim median = %v, want 2000000", sim.MedianNsOp)
	}
	if len(sim.SamplesNsOp) != 3 {
		t.Fatalf("BenchmarkSim samples = %d, want 3", len(sim.SamplesNsOp))
	}
	fed := r.Benchmarks["BenchmarkFederation"]
	if fed.MedianNsOp != 1050000 {
		t.Fatalf("BenchmarkFederation even-count median = %v, want 1050000", fed.MedianNsOp)
	}
	if r.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu header not captured: %q", r.CPU)
	}
	rep := r.Benchmarks["BenchmarkReport"]
	if rep.MedianAllocsOp != 5000 {
		t.Fatalf("BenchmarkReport allocs median = %v, want 5000", rep.MedianAllocsOp)
	}
	if len(rep.SamplesAllocsOp) != 3 {
		t.Fatalf("BenchmarkReport alloc samples = %d, want 3", len(rep.SamplesAllocsOp))
	}
	if len(sim.SamplesAllocsOp) != 0 {
		t.Fatalf("BenchmarkSim must not gain alloc samples: %v", sim.SamplesAllocsOp)
	}
}

// TestGateAllocs: the allocs/op gate fails on regressions beyond the
// threshold and on benchmarks that stop reporting allocations, and
// ignores benchmarks that never reported them.
func TestGateAllocs(t *testing.T) {
	base := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkReport": {MedianNsOp: 1000, MedianAllocsOp: 5000, SamplesAllocsOp: []float64{5000}},
		"BenchmarkSim":    {MedianNsOp: 1000},
	}}
	within := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkReport": {MedianNsOp: 1000, MedianAllocsOp: 5500, SamplesAllocsOp: []float64{5500}},
		"BenchmarkSim":    {MedianNsOp: 1000},
	}}
	if msgs := gateAllocs(base, within, 0.15); len(msgs) != 0 {
		t.Fatalf("+10%% allocs should pass a 15%% gate: %v", msgs)
	}
	over := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkReport": {MedianNsOp: 1000, MedianAllocsOp: 7000, SamplesAllocsOp: []float64{7000}},
		"BenchmarkSim":    {MedianNsOp: 1000},
	}}
	if msgs := gateAllocs(base, over, 0.15); len(msgs) != 1 {
		t.Fatalf("+40%% allocs must fail the gate once: %v", msgs)
	}
	dropped := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkReport": {MedianNsOp: 1000},
		"BenchmarkSim":    {MedianNsOp: 1000},
	}}
	if msgs := gateAllocs(base, dropped, 0.15); len(msgs) != 1 {
		t.Fatalf("dropping ReportAllocs must fail the gate: %v", msgs)
	}
}

func TestComparableRequiresMatchingHardware(t *testing.T) {
	a := &Report{CPU: "cpuA", GoArch: "amd64"}
	if !comparable(a, &Report{CPU: "cpuA", GoArch: "amd64"}) {
		t.Fatal("matching hardware must be comparable")
	}
	if comparable(a, &Report{CPU: "cpuB", GoArch: "amd64"}) {
		t.Fatal("different CPU must not be comparable")
	}
	if comparable(&Report{GoArch: "amd64"}, &Report{GoArch: "amd64"}) {
		t.Fatal("a baseline without a recorded CPU must not be comparable")
	}
}

// TestGateSpeedup: the within-run speedup assertion passes when the
// fast benchmark beats the slow one by the requested factor, fails
// below it or when either benchmark is missing, and rejects malformed
// specs as errors rather than gate verdicts.
func TestGateSpeedup(t *testing.T) {
	cur := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkSim10K":         {MedianNsOp: 3000},
		"BenchmarkSim10KParallel": {MedianNsOp: 1000},
	}}
	msgs, err := gateSpeedup(cur, "BenchmarkSim10KParallel/BenchmarkSim10K=1.5")
	if err != nil || len(msgs) != 0 {
		t.Fatalf("3x speedup must pass a 1.5x gate: msgs=%v err=%v", msgs, err)
	}
	msgs, err = gateSpeedup(cur, "BenchmarkSim10KParallel/BenchmarkSim10K=4.0")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("3x speedup must fail a 4x gate once: msgs=%v err=%v", msgs, err)
	}
	msgs, err = gateSpeedup(cur, "BenchmarkMissing/BenchmarkSim10K=1.5")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("a missing benchmark must fail the gate: msgs=%v err=%v", msgs, err)
	}
	for _, bad := range []string{"no-equals", "noSlash=1.5", "a/b=junk", "a/b=-1"} {
		if _, err := gateSpeedup(cur, bad); err == nil {
			t.Fatalf("malformed spec %q must be an error", bad)
		}
	}
}

func TestGate(t *testing.T) {
	base := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkSim":        {MedianNsOp: 1000},
		"BenchmarkFederation": {MedianNsOp: 1000},
	}}
	within := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkSim":        {MedianNsOp: 1100},
		"BenchmarkFederation": {MedianNsOp: 900},
	}}
	if msgs := gate(base, within, 0.15); len(msgs) != 0 {
		t.Fatalf("+10%% should pass a 15%% gate: %v", msgs)
	}
	over := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkSim":        {MedianNsOp: 1300},
		"BenchmarkFederation": {MedianNsOp: 1000},
	}}
	if msgs := gate(base, over, 0.15); len(msgs) != 1 {
		t.Fatalf("+30%% must fail the gate once: %v", msgs)
	}
	missing := &Report{Benchmarks: map[string]BenchStat{
		"BenchmarkSim": {MedianNsOp: 1000},
	}}
	if msgs := gate(base, missing, 0.15); len(msgs) != 1 {
		t.Fatalf("a dropped benchmark must fail the gate: %v", msgs)
	}
}
