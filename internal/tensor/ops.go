package tensor

import (
	"fmt"
	"math"
)

// Sigmoid returns 1/(1+e^{−a}) elementwise.
func (tp *Tape) Sigmoid(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-a.Data[i]))
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * out.Data[i] * (1 - out.Data[i])
		}
	})
}

// Tanh returns tanh(a) elementwise.
func (tp *Tape) Tanh(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = math.Tanh(a.Data[i])
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * (1 - out.Data[i]*out.Data[i])
		}
	})
}

// ReLU returns max(a, 0) elementwise.
func (tp *Tape) ReLU(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		if a.Data[i] > 0 {
			out.Data[i] = a.Data[i]
		}
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += out.Grad[i]
			}
		}
	})
}

// Softplus returns log(1+e^a), the paper's variance link (Eq. 7).
func (tp *Tape) Softplus(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = softplus(a.Data[i])
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] / (1 + math.Exp(-a.Data[i]))
		}
	})
}

func softplus(x float64) float64 {
	// Numerically stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
	return math.Max(x, 0) + math.Log1p(math.Exp(-math.Abs(x)))
}

// Exp returns e^a elementwise.
func (tp *Tape) Exp(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = math.Exp(a.Data[i])
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * out.Data[i]
		}
	})
}

// Log returns ln(a) elementwise.
func (tp *Tape) Log(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = math.Log(a.Data[i])
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] / a.Data[i]
		}
	})
}

// Square returns a² elementwise.
func (tp *Tape) Square(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * a.Data[i]
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * 2 * a.Data[i]
		}
	})
}

// SoftmaxRows applies softmax independently to each row.
func (tp *Tape) SoftmaxRows(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return tp.record(out, func() {
		for i := 0; i < a.Rows; i++ {
			orow := out.Data[i*a.Cols : (i+1)*a.Cols]
			grow := out.Grad[i*a.Cols : (i+1)*a.Cols]
			dot := 0.0
			for j := range orow {
				dot += orow[j] * grow[j]
			}
			for j := range orow {
				a.Grad[i*a.Cols+j] += orow[j] * (grow[j] - dot)
			}
		}
	})
}

// Sum reduces to a 1×1 scalar.
func (tp *Tape) Sum(a *Tensor) *Tensor {
	out := New(1, 1)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	return tp.record(out, func() {
		g := out.Grad[0]
		for i := range a.Grad {
			a.Grad[i] += g
		}
	})
}

// Mean reduces to a 1×1 scalar average.
func (tp *Tape) Mean(a *Tensor) *Tensor {
	out := New(1, 1)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	n := float64(len(a.Data))
	out.Data[0] = s / n
	return tp.record(out, func() {
		g := out.Grad[0] / n
		for i := range a.Grad {
			a.Grad[i] += g
		}
	})
}

// MeanRows averages over rows, producing a 1×cols row vector (mean
// pooling over a sequence).
func (tp *Tape) MeanRows(a *Tensor) *Tensor {
	out := New(1, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j] += a.Data[i*a.Cols+j]
		}
	}
	n := float64(a.Rows)
	for j := range out.Data {
		out.Data[j] /= n
	}
	return tp.record(out, func() {
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				a.Grad[i*a.Cols+j] += out.Grad[j] / n
			}
		}
	})
}

// ConcatCols stacks tensors with equal row counts side by side.
func (tp *Tape) ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	cols := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", t.Rows, rows))
		}
		cols += t.Cols
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+off:i*cols+off+t.Cols], t.Data[i*t.Cols:(i+1)*t.Cols])
		}
		off += t.Cols
	}
	return tp.record(out, func() {
		off := 0
		for _, t := range ts {
			for i := 0; i < rows; i++ {
				for j := 0; j < t.Cols; j++ {
					t.Grad[i*t.Cols+j] += out.Grad[i*cols+off+j]
				}
			}
			off += t.Cols
		}
	})
}

// ConcatRows stacks tensors with equal column counts vertically.
func (tp *Tape) ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Cols
	rows := 0
	for _, t := range ts {
		if t.Cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", t.Cols, cols))
		}
		rows += t.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:off+len(t.Data)], t.Data)
		off += len(t.Data)
	}
	return tp.record(out, func() {
		off := 0
		for _, t := range ts {
			for i := range t.Grad {
				t.Grad[i] += out.Grad[off+i]
			}
			off += len(t.Data)
		}
	})
}

// SliceCols returns columns [from, to) as a view-copy.
func (tp *Tape) SliceCols(a *Tensor, from, to int) *Tensor {
	if from < 0 || to > a.Cols || from >= to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", from, to, a.Cols))
	}
	w := to - from
	out := New(a.Rows, w)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Data[i*a.Cols+from:i*a.Cols+to])
	}
	return tp.record(out, func() {
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < w; j++ {
				a.Grad[i*a.Cols+from+j] += out.Grad[i*w+j]
			}
		}
	})
}

// SliceRows returns rows [from, to).
func (tp *Tape) SliceRows(a *Tensor, from, to int) *Tensor {
	if from < 0 || to > a.Rows || from >= to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", from, to, a.Rows))
	}
	h := to - from
	out := New(h, a.Cols)
	copy(out.Data, a.Data[from*a.Cols:to*a.Cols])
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[from*a.Cols+i] += out.Grad[i]
		}
	})
}

// Gather selects rows of table by index, implementing embedding
// lookup; gradients scatter back into the table.
func (tp *Tape) Gather(table *Tensor, idx []int) *Tensor {
	out := New(len(idx), table.Cols)
	for i, ix := range idx {
		if ix < 0 || ix >= table.Rows {
			panic(fmt.Sprintf("tensor: Gather index %d out of %d rows", ix, table.Rows))
		}
		copy(out.Data[i*table.Cols:(i+1)*table.Cols], table.Data[ix*table.Cols:(ix+1)*table.Cols])
	}
	return tp.record(out, func() {
		for i, ix := range idx {
			for j := 0; j < table.Cols; j++ {
				table.Grad[ix*table.Cols+j] += out.Grad[i*table.Cols+j]
			}
		}
	})
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies elementwise gain and bias (1×cols row vectors).
func (tp *Tape) LayerNorm(a, gain, bias *Tensor, eps float64) *Tensor {
	if gain.Rows != 1 || gain.Cols != a.Cols || bias.Rows != 1 || bias.Cols != a.Cols {
		panic("tensor: LayerNorm gain/bias must be 1×cols")
	}
	out := New(a.Rows, a.Cols)
	n := float64(a.Cols)
	means := make([]float64, a.Rows)
	invstd := make([]float64, a.Rows)
	xhat := make([]float64, len(a.Data))
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		m := 0.0
		for _, v := range row {
			m += v
		}
		m /= n
		va := 0.0
		for _, v := range row {
			d := v - m
			va += d * d
		}
		va /= n
		is := 1 / math.Sqrt(va+eps)
		means[i], invstd[i] = m, is
		for j, v := range row {
			h := (v - m) * is
			xhat[i*a.Cols+j] = h
			out.Data[i*a.Cols+j] = h*gain.Data[j] + bias.Data[j]
		}
	}
	return tp.record(out, func() {
		for i := 0; i < a.Rows; i++ {
			// Accumulate per-row reductions of the standard
			// layer-norm backward.
			var sumG, sumGX float64
			for j := 0; j < a.Cols; j++ {
				g := out.Grad[i*a.Cols+j] * gain.Data[j]
				sumG += g
				sumGX += g * xhat[i*a.Cols+j]
			}
			for j := 0; j < a.Cols; j++ {
				g := out.Grad[i*a.Cols+j] * gain.Data[j]
				h := xhat[i*a.Cols+j]
				a.Grad[i*a.Cols+j] += invstd[i] * (g - sumG/n - h*sumGX/n)
				gain.Grad[j] += out.Grad[i*a.Cols+j] * h
				bias.Grad[j] += out.Grad[i*a.Cols+j]
			}
		}
	})
}
