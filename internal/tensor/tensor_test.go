package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad estimates ∂f/∂x[i] by central differences, where f
// rebuilds the graph from scratch each call.
func numericGrad(x *Tensor, i int, f func() float64) float64 {
	const h = 1e-5
	old := x.Data[i]
	x.Data[i] = old + h
	fp := f()
	x.Data[i] = old - h
	fm := f()
	x.Data[i] = old
	return (fp - fm) / (2 * h)
}

// checkGrads verifies analytic vs numeric gradients for every input.
func checkGrads(t *testing.T, name string, inputs []*Tensor, forward func(tp *Tape) *Tensor) {
	t.Helper()
	tp := NewTape()
	loss := forward(tp)
	tp.Backward(loss)
	f := func() float64 {
		tp2 := NewTape()
		return forward(tp2).Item()
	}
	for xi, x := range inputs {
		for i := range x.Data {
			want := numericGrad(x, i, f)
			got := x.Grad[i]
			tol := 1e-4 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("%s: input %d elem %d: grad %v, numeric %v", name, xi, i, got, want)
			}
		}
	}
}

func randT(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func randPos(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = 0.5 + rng.Float64()
	}
	return t
}

func TestGradAddSubMulDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randT(rng, 3, 4), randPos(rng, 3, 4)
	checkGrads(t, "Add", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Add(a, b))
	})
	a.ZeroGrad()
	b.ZeroGrad()
	checkGrads(t, "Sub", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.Sub(a, b)))
	})
	a.ZeroGrad()
	b.ZeroGrad()
	checkGrads(t, "Mul", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Mul(a, b))
	})
	a.ZeroGrad()
	b.ZeroGrad()
	checkGrads(t, "Div", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Div(a, b))
	})
}

func TestGradScaleAddScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randT(rng, 2, 5)
	checkGrads(t, "Scale", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Scale(a, 2.5))
	})
	a.ZeroGrad()
	checkGrads(t, "AddScalar", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.AddScalar(a, 1.5)))
	})
}

func TestGradAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, row := randT(rng, 4, 3), randT(rng, 1, 3)
	checkGrads(t, "AddRow", []*Tensor{a, row}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.AddRow(a, row)))
	})
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randT(rng, 3, 4), randT(rng, 4, 2)
	checkGrads(t, "MatMul", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.MatMul(a, b)))
	})
}

func TestGradMatMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := randT(rng, 3, 4), randT(rng, 5, 4)
	checkGrads(t, "MatMulT", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.MatMulT(a, b)))
	})
}

func TestGradTMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a, b := randT(rng, 4, 3), randT(rng, 4, 2)
	checkGrads(t, "TMatMul", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.TMatMul(a, b)))
	})
}

func TestTMatMulMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	a, b := randT(rng, 4, 3), randT(rng, 4, 2)
	tp := NewTape()
	got := tp.TMatMul(a, b)
	if got.Rows != 3 || got.Cols != 2 {
		t.Fatalf("shape %dx%d, want 3x2", got.Rows, got.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			for p := 0; p < 4; p++ {
				want += a.At(p, i) * b.At(p, j)
			}
			if math.Abs(got.At(i, j)-want) > 1e-12 {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestMatMulTMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := randT(rng, 3, 4), randT(rng, 5, 4)
	tp := NewTape()
	got := tp.MatMulT(a, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			for k := 0; k < 4; k++ {
				want += a.At(i, k) * b.At(j, k)
			}
			if math.Abs(got.At(i, j)-want) > 1e-12 {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		op   func(tp *Tape, a *Tensor) *Tensor
	}{
		{"Sigmoid", func(tp *Tape, a *Tensor) *Tensor { return tp.Sigmoid(a) }},
		{"Tanh", func(tp *Tape, a *Tensor) *Tensor { return tp.Tanh(a) }},
		{"Softplus", func(tp *Tape, a *Tensor) *Tensor { return tp.Softplus(a) }},
		{"Exp", func(tp *Tape, a *Tensor) *Tensor { return tp.Exp(a) }},
	} {
		a := randT(rng, 2, 4)
		checkGrads(t, tc.name, []*Tensor{a}, func(tp *Tape) *Tensor {
			return tp.Sum(tc.op(tp, a))
		})
	}
}

func TestGradReLU(t *testing.T) {
	// Avoid kink at 0 by keeping inputs away from it.
	a := FromSlice(1, 4, []float64{-2, -0.5, 0.5, 2})
	checkGrads(t, "ReLU", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.ReLU(a)))
	})
}

func TestGradLog(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randPos(rng, 2, 3)
	checkGrads(t, "Log", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Log(a))
	})
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randT(rng, 3, 5)
	w := randT(rng, 3, 5) // project to scalar to exercise full Jacobian
	checkGrads(t, "SoftmaxRows", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Mul(tp.SoftmaxRows(a), w))
	})
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randT(rng, 4, 6)
	tp := NewTape()
	s := tp.SoftmaxRows(a)
	for i := 0; i < s.Rows; i++ {
		sum := 0.0
		for j := 0; j < s.Cols; j++ {
			sum += s.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestGradReductionsAndSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randT(rng, 4, 6)
	checkGrads(t, "Mean", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Mean(tp.Square(a))
	})
	a.ZeroGrad()
	checkGrads(t, "MeanRows", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.MeanRows(a)))
	})
	a.ZeroGrad()
	checkGrads(t, "SliceCols", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.SliceCols(a, 1, 4)))
	})
	a.ZeroGrad()
	checkGrads(t, "SliceRows", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.SliceRows(a, 1, 3)))
	})
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a, b := randT(rng, 3, 2), randT(rng, 3, 4)
	checkGrads(t, "ConcatCols", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.ConcatCols(a, b)))
	})
	c, d := randT(rng, 2, 3), randT(rng, 4, 3)
	checkGrads(t, "ConcatRows", []*Tensor{c, d}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.ConcatRows(c, d)))
	})
}

func TestGradGather(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	table := randT(rng, 5, 3)
	idx := []int{0, 2, 2, 4}
	checkGrads(t, "Gather", []*Tensor{table}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.Gather(table, idx)))
	})
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randT(rng, 3, 6)
	gain := randPos(rng, 1, 6)
	bias := randT(rng, 1, 6)
	checkGrads(t, "LayerNorm", []*Tensor{a, gain, bias}, func(tp *Tape) *Tensor {
		return tp.Sum(tp.Square(tp.LayerNorm(a, gain, bias, 1e-5)))
	})
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randT(rng, 4, 8)
	gain := New(1, 8)
	bias := New(1, 8)
	for j := range gain.Data {
		gain.Data[j] = 1
	}
	tp := NewTape()
	out := tp.LayerNorm(a, gain, bias, 1e-8)
	for i := 0; i < out.Rows; i++ {
		m, v := 0.0, 0.0
		for j := 0; j < out.Cols; j++ {
			m += out.At(i, j)
		}
		m /= float64(out.Cols)
		for j := 0; j < out.Cols; j++ {
			d := out.At(i, j) - m
			v += d * d
		}
		v /= float64(out.Cols)
		if math.Abs(m) > 1e-9 || math.Abs(v-1) > 1e-6 {
			t.Fatalf("row %d: mean %v var %v", i, m, v)
		}
	}
}

func TestShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	tp := NewTape()
	a := New(2, 3)
	b := New(3, 2)
	expectPanic("Add", func() { tp.Add(a, b) })
	expectPanic("MatMul", func() { tp.MatMul(a, New(2, 2)) })
	expectPanic("MatMulT", func() { tp.MatMulT(a, New(2, 4)) })
	expectPanic("AddRow", func() { tp.AddRow(a, New(1, 4)) })
	expectPanic("Item", func() { a.Item() })
	expectPanic("Backward", func() { tp.Backward(a) })
	expectPanic("FromSlice", func() { FromSlice(2, 2, []float64{1}) })
	expectPanic("SliceCols", func() { tp.SliceCols(a, 2, 2) })
	expectPanic("SliceRows", func() { tp.SliceRows(a, 0, 5) })
	expectPanic("Gather", func() { tp.Gather(a, []int{7}) })
	expectPanic("ConcatCols", func() { tp.ConcatCols() })
	expectPanic("ConcatRows", func() { tp.ConcatRows(a, New(2, 4)) })
	expectPanic("LayerNorm", func() { tp.LayerNorm(a, New(1, 4), New(1, 3), 1e-5) })
}

func TestTapeResetAndReuse(t *testing.T) {
	a := FromSlice(1, 1, []float64{3})
	tp := NewTape()
	l1 := tp.Square(a)
	tp.Backward(l1)
	if a.Grad[0] != 6 {
		t.Fatalf("grad = %v, want 6", a.Grad[0])
	}
	if tp.Len() != 1 {
		t.Fatalf("tape len = %d, want 1", tp.Len())
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatal("tape should be empty after Reset")
	}
	a.ZeroGrad()
	l2 := tp.Scale(a, 4)
	tp.Backward(l2)
	if a.Grad[0] != 4 {
		t.Fatalf("grad after reuse = %v, want 4", a.Grad[0])
	}
}

func TestGradAccumulatesOverUses(t *testing.T) {
	// x used twice: d(x²+3x)/dx = 2x+3.
	x := FromSlice(1, 1, []float64{2})
	tp := NewTape()
	loss := tp.Add(tp.Square(x), tp.Scale(x, 3))
	tp.Backward(loss)
	if x.Grad[0] != 7 {
		t.Fatalf("grad = %v, want 7", x.Grad[0])
	}
}

func TestHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := Xavier(10, 10, rng)
	bound := math.Sqrt(6.0 / 20.0)
	for _, v := range x.Data {
		if v < -bound || v > bound {
			t.Fatalf("xavier value %v outside ±%v", v, bound)
		}
	}
	r := Randn(50, 50, 0.1, rng)
	if math.Abs(meanOf(r.Data)) > 0.02 {
		t.Fatalf("randn mean = %v", meanOf(r.Data))
	}
	v := FromVector([]float64{1, 2, 3})
	if v.Rows != 3 || v.Cols != 1 || v.At(1, 0) != 2 {
		t.Fatal("FromVector layout wrong")
	}
	c := v.Clone()
	c.Set(0, 0, 9)
	if v.At(0, 0) == 9 {
		t.Fatal("Clone must not alias")
	}
	row := FromSlice(2, 2, []float64{1, 2, 3, 4}).Row(1)
	if row[0] != 3 || row[1] != 4 {
		t.Fatal("Row extraction wrong")
	}
	if FromSlice(1, 1, []float64{5}).String() != "tensor(1x1)" {
		t.Fatal("String format")
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
