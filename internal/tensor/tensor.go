// Package tensor implements dense 2-D matrices with reverse-mode
// automatic differentiation on a tape. It is the numeric substrate
// for the forecasting models (OrgLinear and the deep baselines of
// Fig. 10), replacing the paper's PyTorch stack with stdlib-only Go.
//
// A Tape records every operation; Backward replays the tape in
// reverse, accumulating gradients into each Tensor's Grad buffer.
// Shape errors panic: they are programming errors, not runtime
// conditions.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a rows×cols matrix. Grad, when non-nil, accumulates
// ∂loss/∂Data during Backward.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64
	back       func()
}

// New allocates a zero matrix with a gradient buffer.
func New(rows, cols int) *Tensor {
	return &Tensor{
		Rows: rows, Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// FromSlice wraps data (not copied) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data, Grad: make([]float64, len(data))}
}

// FromVector wraps data as a column vector.
func FromVector(data []float64) *Tensor { return FromSlice(len(data), 1, data) }

// Randn fills a new tensor with N(0, scale²) entries.
func Randn(rows, cols int, scale float64, rng *rand.Rand) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	return t
}

// Xavier initializes with the Glorot uniform bound for a fan-in/out
// pair.
func Xavier(rows, cols int, rng *rand.Rand) *Tensor {
	bound := math.Sqrt(6.0 / float64(rows+cols))
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	return t
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Clone deep-copies the tensor's data (grad starts at zero).
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Item returns the single element of a 1×1 tensor.
func (t *Tensor) Item() float64 {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("tensor: Item on %dx%d", t.Rows, t.Cols))
	}
	return t.Data[0]
}

// Row returns a copy of row i.
func (t *Tensor) Row(i int) []float64 {
	out := make([]float64, t.Cols)
	copy(out, t.Data[i*t.Cols:(i+1)*t.Cols])
	return out
}

// String implements fmt.Stringer.
func (t *Tensor) String() string {
	return fmt.Sprintf("tensor(%dx%d)", t.Rows, t.Cols)
}

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	nodes []*Tensor
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations so the tape can be reused
// for the next forward pass.
func (tp *Tape) Reset() { tp.nodes = tp.nodes[:0] }

// Len reports the number of recorded operations.
func (tp *Tape) Len() int { return len(tp.nodes) }

func (tp *Tape) record(out *Tensor, back func()) *Tensor {
	out.back = back
	tp.nodes = append(tp.nodes, out)
	return out
}

// Backward seeds ∂loss/∂loss = 1 and propagates gradients through
// every recorded operation in reverse order. loss must be 1×1.
func (tp *Tape) Backward(loss *Tensor) {
	if loss.Rows != 1 || loss.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward needs scalar loss, got %dx%d", loss.Rows, loss.Cols))
	}
	loss.Grad[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		if tp.nodes[i].back != nil {
			tp.nodes[i].back()
		}
	}
}

func assertSameShape(op string, a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Add returns a + b (elementwise).
func (tp *Tape) Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i]
			b.Grad[i] += out.Grad[i]
		}
	})
}

// Sub returns a − b (elementwise).
func (tp *Tape) Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i]
			b.Grad[i] -= out.Grad[i]
		}
	})
}

// Mul returns a ⊙ b (elementwise product).
func (tp *Tape) Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * b.Data[i]
			b.Grad[i] += out.Grad[i] * a.Data[i]
		}
	})
}

// Div returns a ⊘ b (elementwise quotient).
func (tp *Tape) Div(a, b *Tensor) *Tensor {
	assertSameShape("Div", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] / b.Data[i]
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] / b.Data[i]
			b.Grad[i] -= out.Grad[i] * a.Data[i] / (b.Data[i] * b.Data[i])
		}
	})
}

// Scale returns s·a.
func (tp *Tape) Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * s
		}
	})
}

// AddScalar returns a + s (elementwise).
func (tp *Tape) AddScalar(a *Tensor, s float64) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + s
	}
	return tp.record(out, func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i]
		}
	})
}

// AddRow broadcasts a 1×cols row vector over every row of a.
func (tp *Tape) AddRow(a, row *Tensor) *Tensor {
	if row.Rows != 1 || row.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRow wants 1x%d, got %dx%d", a.Cols, row.Rows, row.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[i*a.Cols+j] = a.Data[i*a.Cols+j] + row.Data[j]
		}
	}
	return tp.record(out, func() {
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				g := out.Grad[i*a.Cols+j]
				a.Grad[i*a.Cols+j] += g
				row.Grad[j] += g
			}
		}
	})
}

// MatMul returns a·b.
func (tp *Tape) MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	matmul(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	return tp.record(out, func() {
		// dA = dOut · Bᵀ ; dB = Aᵀ · dOut
		for i := 0; i < a.Rows; i++ {
			for k := 0; k < a.Cols; k++ {
				s := 0.0
				for j := 0; j < b.Cols; j++ {
					s += out.Grad[i*b.Cols+j] * b.Data[k*b.Cols+j]
				}
				a.Grad[i*a.Cols+k] += s
			}
		}
		for k := 0; k < b.Rows; k++ {
			for j := 0; j < b.Cols; j++ {
				s := 0.0
				for i := 0; i < a.Rows; i++ {
					s += a.Data[i*a.Cols+k] * out.Grad[i*b.Cols+j]
				}
				b.Grad[k*b.Cols+j] += s
			}
		}
	})
}

// MatMulT returns a·bᵀ without materializing the transpose, the form
// attention scores take (Q·Kᵀ).
func (tp *Tape) MatMulT(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[j*b.Cols+k]
			}
			out.Data[i*b.Rows+j] = s
		}
	}
	return tp.record(out, func() {
		// dA = dOut · B ; dB = dOutᵀ · A
		for i := 0; i < a.Rows; i++ {
			for k := 0; k < a.Cols; k++ {
				s := 0.0
				for j := 0; j < b.Rows; j++ {
					s += out.Grad[i*b.Rows+j] * b.Data[j*b.Cols+k]
				}
				a.Grad[i*a.Cols+k] += s
			}
		}
		for j := 0; j < b.Rows; j++ {
			for k := 0; k < b.Cols; k++ {
				s := 0.0
				for i := 0; i < a.Rows; i++ {
					s += out.Grad[i*b.Rows+j] * a.Data[i*a.Cols+k]
				}
				b.Grad[j*b.Cols+k] += s
			}
		}
	})
}

// TMatMul returns aᵀ·b without materializing the transpose.
func (tp *Tape) TMatMul(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for p := 0; p < a.Rows; p++ {
		for i := 0; i < a.Cols; i++ {
			av := a.Data[p*a.Cols+i]
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.Data[p*b.Cols+j]
			}
		}
	}
	return tp.record(out, func() {
		// dA[p][i] = Σ_j dOut[i][j]·B[p][j]; dB[p][j] = Σ_i A[p][i]·dOut[i][j]
		for p := 0; p < a.Rows; p++ {
			for i := 0; i < a.Cols; i++ {
				s := 0.0
				for j := 0; j < b.Cols; j++ {
					s += out.Grad[i*b.Cols+j] * b.Data[p*b.Cols+j]
				}
				a.Grad[p*a.Cols+i] += s
			}
			for j := 0; j < b.Cols; j++ {
				s := 0.0
				for i := 0; i < a.Cols; i++ {
					s += a.Data[p*a.Cols+i] * out.Grad[i*b.Cols+j]
				}
				b.Grad[p*b.Cols+j] += s
			}
		}
	})
}

func matmul(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				dst[i*n+j] += av * b[p*n+j]
			}
		}
	}
}
