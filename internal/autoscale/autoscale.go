// Package autoscale closes the paper's forecast→capacity loop: a
// per-tick capacity controller that consumes the same per-organization
// demand history the GPU Demand Estimator (§3.2) trains on and
// provisions or retires nodes mid-run through the simulator's
// global-sequence event path. Capacity is bought across multi-tier
// pools (spot → on-demand → reserved, priced by internal/pricing),
// scale-ups are confidence-thresholded on the forecast's upper
// quantile, pre-warm lead times stretch with the diurnal activity
// curve (capacity markets are tightest at peak hours), and idle nodes
// scale down after a grace period, draining rather than stranding
// their tasks.
package autoscale

import (
	"fmt"
	"math"
	"sort"

	"github.com/sjtucitlab/gfs/internal/cluster"
	"github.com/sjtucitlab/gfs/internal/gde"
	"github.com/sjtucitlab/gfs/internal/pricing"
	"github.com/sjtucitlab/gfs/internal/sched"
	"github.com/sjtucitlab/gfs/internal/simclock"
	"github.com/sjtucitlab/gfs/internal/stats"
	"github.com/sjtucitlab/gfs/internal/timefeat"
)

// Mode selects how the policy estimates upcoming demand.
type Mode string

const (
	// ModeReactive sizes capacity from observed demand only: GPUs in
	// use plus the pending queue at each tick.
	ModeReactive Mode = "reactive"
	// ModePredictive additionally forecasts HP demand per
	// organization (GDE when an estimator is fitted, a deterministic
	// seasonal-naive fallback otherwise) and provisions toward the
	// forecast's upper confidence quantile, so capacity lands before
	// the demand does.
	ModePredictive Mode = "predictive"
)

// ParseMode resolves a mode name, rejecting unknown values.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeReactive, ModePredictive:
		return Mode(s), nil
	}
	return "", fmt.Errorf("autoscale: unknown mode %q (want %q or %q)", s, ModeReactive, ModePredictive)
}

// TierQuota caps how many autoscaled nodes one capacity tier may
// hold. A policy's tiers are tried in slice order, so listing spot
// first buys the cheapest capacity first.
type TierQuota struct {
	// Tier names the capacity tier (pricing.TierSpot, TierOnDemand,
	// TierReserved).
	Tier string
	// MaxNodes bounds the autoscaled nodes in this tier.
	MaxNodes int
}

// DefaultTiers returns the spot → on-demand → reserved preference
// ladder: half the budget interruptible, a quarter on-demand, and
// reserved absorbing whatever overflow the total cap still allows.
func DefaultTiers(maxNodes int) []TierQuota {
	return []TierQuota{
		{Tier: pricing.TierSpot, MaxNodes: (maxNodes + 1) / 2},
		{Tier: pricing.TierOnDemand, MaxNodes: (maxNodes + 3) / 4},
		{Tier: pricing.TierReserved, MaxNodes: maxNodes},
	}
}

// Policy is the built-in sched.Autoscaler. The zero value is not
// ready; fill Mode (everything else defaults sensibly) and hand a
// fresh Policy to each run — Plan keeps per-run state (idle timers,
// in-flight provisions), so sharing one across runs leaks decisions
// between them.
type Policy struct {
	// Mode picks reactive or predictive demand estimation.
	Mode Mode
	// Model is the GPU model of provisioned pools (default "A100").
	Model string
	// GPUsPerNode sizes provisioned nodes (default 8).
	GPUsPerNode int
	// MaxNodes caps total live autoscaled nodes (default 64).
	MaxNodes int
	// Step caps nodes provisioned or retired per tick (default 4).
	Step int
	// Tiers is the per-tier budget ladder, tried in order; empty
	// defaults to DefaultTiers(MaxNodes).
	Tiers []TierQuota
	// Confidence is the forecast quantile a predictive scale-up
	// provisions toward, in (0,1) (default 0.9).
	Confidence float64
	// TargetUtilization is the demand/capacity ratio the controller
	// steers to, in (0,1] (default 0.8): it scales up when demand
	// would exceed target×capacity and down when idle capacity keeps
	// utilization below it.
	TargetUtilization float64
	// PreWarm is the base provisioning lead time (default 10 min).
	PreWarm simclock.Duration
	// Curve, when set, stretches the pre-warm lead with the diurnal
	// activity weight — at peak hours a provision takes up to 2×
	// PreWarm to deliver.
	Curve *timefeat.DiurnalCurve
	// Calendar resolves Curve's weekend/holiday damping; nil means a
	// plain calendar.
	Calendar *timefeat.Calendar
	// IdleAfter is the grace a node must stay fully idle before it
	// is retired (default 30 min).
	IdleAfter simclock.Duration
	// Estimator, when fitted, serves the predictive forecasts; nil
	// (or unfitted) falls back to a deterministic seasonal-naive
	// forecast over the live demand history.
	Estimator *gde.Estimator

	initDone  bool
	idleSince map[int]simclock.Time
	pending   []pendingProv
}

// pendingProv tracks one ordered-but-undelivered provision so the
// controller does not re-order capacity already in flight.
type pendingProv struct {
	at    simclock.Time
	nodes int
	tier  string
}

func (p *Policy) init() {
	if p.initDone {
		return
	}
	p.initDone = true
	if p.Model == "" {
		p.Model = "A100"
	}
	if p.GPUsPerNode <= 0 {
		p.GPUsPerNode = 8
	}
	if p.MaxNodes <= 0 {
		p.MaxNodes = 64
	}
	if p.Step <= 0 {
		p.Step = 4
	}
	if p.Confidence <= 0 || p.Confidence >= 1 {
		p.Confidence = 0.9
	}
	if p.TargetUtilization <= 0 || p.TargetUtilization > 1 {
		p.TargetUtilization = 0.8
	}
	if p.PreWarm <= 0 {
		p.PreWarm = 10 * simclock.Minute
	}
	if p.IdleAfter <= 0 {
		p.IdleAfter = 30 * simclock.Minute
	}
	if len(p.Tiers) == 0 {
		p.Tiers = DefaultTiers(p.MaxNodes)
	}
	if p.idleSince == nil {
		p.idleSince = make(map[int]simclock.Time)
	}
}

// Plan implements sched.Autoscaler: one control decision per quota
// tick, deterministic in the sequence of contexts observed.
func (p *Policy) Plan(ctx *sched.AutoscaleContext) sched.AutoscalePlan {
	p.init()
	now := ctx.Now

	// In-flight provisions: anything due by now has been delivered
	// (provision events sort before the tick that ordered them plus
	// one interval), so only strictly-future entries still count.
	kept := p.pending[:0]
	pendNodes := 0
	pendByTier := make(map[string]int)
	for _, pr := range p.pending {
		if pr.at > now {
			kept = append(kept, pr)
			pendNodes += pr.nodes
			pendByTier[pr.tier] += pr.nodes
		}
	}
	p.pending = kept

	activeNodes := 0
	activeByTier := make(map[string]int)
	for _, n := range ctx.Cluster.Nodes() {
		if n.Tier == "" || !n.Schedulable() {
			continue
		}
		activeNodes++
		activeByTier[n.Tier]++
	}

	// Demand is guaranteed (HP) work only — running plus queued.
	// Spot usage expands to fill whatever capacity exists, so counting
	// it would make every purchase justify the next one; instead spot
	// harvests the headroom the capacity target leaves open.
	capacity := ctx.Cluster.TotalGPUs("")
	demand := ctx.Cluster.HPGPUs("") + ctx.PendingGPUs
	target := p.TargetUtilization
	// The observed-demand target keeps utilization at TargetUtilization;
	// the forecast's upper quantile is a capacity target in its own
	// right (the confidence margin already is the headroom), so it is
	// not divided by target again.
	need := demand / target
	if p.Mode == ModePredictive {
		if q := p.forecastUpper(ctx); q > need {
			need = q
		}
	}
	// Capacity already bought but still pre-warming counts toward the
	// target, otherwise every tick inside the lead re-buys the gap.
	effCap := capacity + float64(pendNodes*p.GPUsPerNode)
	gap := need - effCap

	var plan sched.AutoscalePlan
	if gap > 0 {
		nodes := int(math.Ceil(gap / float64(p.GPUsPerNode)))
		if nodes > p.Step {
			nodes = p.Step
		}
		if room := p.MaxNodes - activeNodes - pendNodes; nodes > room {
			nodes = room
		}
		lead := p.lead(now)
		for _, tq := range p.Tiers {
			if nodes <= 0 {
				break
			}
			room := tq.MaxNodes - activeByTier[tq.Tier] - pendByTier[tq.Tier]
			if room <= 0 {
				continue
			}
			take := nodes
			if take > room {
				take = room
			}
			plan.Provisions = append(plan.Provisions, sched.Provision{
				Pool: cluster.Pool{Model: p.Model, Nodes: take, GPUsPerNode: p.GPUsPerNode, Tier: tq.Tier},
				Lead: lead,
			})
			p.pending = append(p.pending, pendingProv{at: now.Add(lead), nodes: take, tier: tq.Tier})
			nodes -= take
		}
	}

	// Idle bookkeeping runs every tick; retirement only when no
	// scale-up is in progress and surplus survives the removal. A node
	// is idle when it holds no guaranteed work — spot riders drain
	// (with eviction) when the node retires, they do not pin it.
	retiredGPUs := 0.0
	for _, n := range ctx.Cluster.Nodes() {
		if n.Tier == "" || !n.Schedulable() || n.HPGPUs() > 0 {
			delete(p.idleSince, n.ID)
			continue
		}
		since, ok := p.idleSince[n.ID]
		if !ok {
			p.idleSince[n.ID] = now
			continue
		}
		if gap > 0 || len(plan.Retire) >= p.Step {
			continue
		}
		if now.Sub(since) < p.IdleAfter {
			continue
		}
		nc := float64(n.Capacity())
		if effCap-retiredGPUs-nc < need {
			continue
		}
		plan.Retire = append(plan.Retire, n.ID)
		retiredGPUs += nc
		delete(p.idleSince, n.ID)
	}
	return plan
}

// lead returns the pre-warm delay for a provision ordered at now:
// PreWarm stretched by the diurnal activity weight when a curve is
// configured.
func (p *Policy) lead(now simclock.Time) simclock.Duration {
	lead := p.PreWarm
	if p.Curve != nil {
		w := p.Curve.WeightAt(p.Calendar, now)
		lead = simclock.Duration(float64(lead) * (1 + w))
	}
	return lead
}

// forecastUpper returns the cluster's upper-quantile HP demand
// forecast for the near horizon: per-organization forecasts (GDE when
// fitted, the seasonal-naive fallback otherwise) aggregated per
// horizon step as Σμ + z·√(Σσ²) — organizations fluctuate
// independently, so summing their individual quantiles would price
// perfectly-correlated worst cases into every scale-up — and maxed
// over the steps. Organizations are visited in sorted name order so
// the float accumulation is deterministic.
func (p *Policy) forecastUpper(ctx *sched.AutoscaleContext) float64 {
	if len(ctx.OrgDemand) == 0 {
		return 0
	}
	z := stats.NormICDF(p.Confidence)
	orgs := make([]string, 0, len(ctx.OrgDemand))
	for org := range ctx.OrgDemand {
		orgs = append(orgs, org)
	}
	sort.Strings(orgs)
	var mus, vars []float64
	add := func(i int, mu, sigma float64) {
		for len(mus) <= i {
			mus = append(mus, 0)
			vars = append(vars, 0)
		}
		if mu > 0 {
			mus[i] += mu
		}
		vars[i] += sigma * sigma
	}
	for _, org := range orgs {
		hist := ctx.OrgDemand[org]
		if len(hist) == 0 {
			continue
		}
		if p.Estimator != nil && p.Estimator.Fitted() {
			m, s := p.Estimator.Forecast(org, hist, ctx.HourIndex)
			for i := range m {
				add(i, m[i], s[i])
			}
		} else {
			mu, sigma := seasonalNaive(hist)
			add(0, mu, sigma)
		}
	}
	upper := 0.0
	for i := range mus {
		if u := mus[i] + z*math.Sqrt(vars[i]); u > upper {
			upper = u
		}
	}
	return upper
}

// seasonalNaive is the estimator-free fallback forecast: the value
// one day earlier (or the latest value while the history is shorter
// than a day), with the mean absolute seasonal residual — how far
// today strayed from yesterday at the same hours — as spread. Using
// the predictor's own residuals rather than the raw diurnal swing
// keeps the upper quantile from pricing the whole daily amplitude
// into every scale-up decision.
func seasonalNaive(hist []float64) (mu, sigma float64) {
	n := len(hist)
	mu = hist[n-1]
	if n >= 24 {
		mu = hist[n-24]
	}
	if n >= 25 {
		lo := n - 24
		if lo < 24 {
			lo = 24
		}
		for i := lo; i < n; i++ {
			sigma += math.Abs(hist[i] - hist[i-24])
		}
		sigma /= float64(n - lo)
		return mu, sigma
	}
	// Under a day of history: fall back to the deviation around the
	// observed mean.
	mean := 0.0
	for _, v := range hist {
		mean += v
	}
	mean /= float64(n)
	for _, v := range hist {
		sigma += math.Abs(v - mean)
	}
	sigma /= float64(n)
	return mu, sigma
}
