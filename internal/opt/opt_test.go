package opt

import (
	"math/rand"
	"testing"

	"github.com/sjtucitlab/gfs/internal/cluster"
	"github.com/sjtucitlab/gfs/internal/pts"
	"github.com/sjtucitlab/gfs/internal/sched"
	"github.com/sjtucitlab/gfs/internal/simclock"
	"github.com/sjtucitlab/gfs/internal/task"
)

func TestFeasiblePacking(t *testing.T) {
	cases := []struct {
		caps []int
		reqs []int
		want bool
	}{
		{[]int{8, 8}, []int{8, 8}, true},
		{[]int{8, 8}, []int{8, 8, 1}, false},
		{[]int{4, 4}, []int{8}, false}, // cannot split a pod
		{[]int{8}, []int{4, 4}, true},
		{[]int{5, 3}, []int{4, 3, 1}, true},
		{[]int{5, 3}, []int{4, 4}, false},
		{nil, []int{1}, false},
		{[]int{2}, nil, true},
	}
	for _, c := range cases {
		if got := FeasiblePacking(c.caps, c.reqs); got != c.want {
			t.Fatalf("FeasiblePacking(%v, %v) = %v, want %v", c.caps, c.reqs, got, c.want)
		}
	}
}

func TestMinVictimCount(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 1, 8)
	n := cl.Nodes()[0]
	mk := func(id int, g float64) *task.Task {
		tk := task.New(id, task.Spot, 1, g, simclock.Hour)
		if err := n.PlacePod(tk); err != nil {
			t.Fatal(err)
		}
		return tk
	}
	mk(1, 2)
	mk(2, 2)
	mk(3, 4)
	// 0 free; need 4 → single eviction of task 3 suffices.
	if got := MinVictimCount(n, 4); got != 1 {
		t.Fatalf("MinVictimCount(4) = %d, want 1", got)
	}
	if got := MinVictimCount(n, 8); got != 3 {
		t.Fatalf("MinVictimCount(8) = %d, want 3", got)
	}
	if got := MinVictimCount(n, 9); got != -1 {
		t.Fatalf("MinVictimCount(9) = %d, want -1", got)
	}
}

// The PTS preemption heuristic should stay close to the exhaustive
// optimum on random small instances (the paper claims near-optimal
// victim selection from the linear scan).
func TestPTSPreemptionNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	now := simclock.Time(2 * simclock.Hour)
	for trial := 0; trial < 60; trial++ {
		cl := cluster.NewHomogeneous("A100", 3, 8)
		st := sched.NewState(cl)
		id := 1
		// Random spot layout.
		for _, n := range cl.Nodes() {
			for n.WholeFreeGPUs() > 0 && rng.Float64() < 0.8 {
				g := []float64{1, 2, 4}[rng.Intn(3)]
				if int(g) > n.WholeFreeGPUs() {
					break
				}
				tk := task.New(id, task.Spot, 1, g, 4*simclock.Hour)
				tk.CheckpointEvery = simclock.Duration(10+rng.Intn(50)) * simclock.Minute
				tk.EnterQueue(0)
				txn := st.Begin()
				if err := txn.Place(n, tk); err != nil {
					t.Fatal(err)
				}
				txn.Commit()
				tk.Start(simclock.Time(rng.Intn(3600)))
				id++
			}
		}
		need := 1 + rng.Intn(8)
		gCount, fCount := 50, 10
		elapsed := now.Sub(0).Seconds()

		exact := ExactPreemption(cl.Nodes(), need, gCount, fCount, 0.5, elapsed, now)

		s := pts.New(pts.DefaultConfig())
		hp := task.New(1000, task.HP, 1, float64(need), simclock.Hour)
		hp.EnterQueue(now)
		ctx := &sched.Context{Now: now, State: st, G: gCount, F: fCount}
		dec, err := s.Schedule(ctx, hp)

		if exact == nil {
			if err == nil && len(dec.Victims) > 0 {
				t.Fatalf("trial %d: heuristic preempted where exact says infeasible", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: heuristic failed where exact found a plan (need %d)", trial, need)
		}
		// Heuristic cost uses the node the pod landed on (all nodes
		// share capacity here).
		nodeGPUSeconds := 8 * elapsed
		heurCost := cost(gCount, fCount, dec.Victims, 0.5, nodeGPUSeconds, now)
		// Within 2× of optimal and never worse by more than a
		// small absolute slack.
		if heurCost > exact.Cost*2+0.05 {
			t.Fatalf("trial %d: heuristic cost %v vs optimal %v", trial, heurCost, exact.Cost)
		}
	}
}

func TestExactPreemptionPrefersNoVictims(t *testing.T) {
	cl := cluster.NewHomogeneous("A100", 2, 8)
	n0 := cl.Nodes()[0]
	spot := task.New(1, task.Spot, 1, 8, simclock.Hour)
	spot.EnterQueue(0)
	if err := n0.PlacePod(spot); err != nil {
		t.Fatal(err)
	}
	spot.Start(0)
	plan := ExactPreemption(cl.Nodes(), 4, 10, 2, 0.5, 3600, simclock.Time(simclock.Hour))
	if plan == nil {
		t.Fatal("plan expected")
	}
	if len(plan.Victims) != 0 || plan.Node != cl.Nodes()[1] {
		t.Fatalf("optimal plan should use the free node, got %v victims on node %d",
			len(plan.Victims), plan.Node.ID)
	}
}
