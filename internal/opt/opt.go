// Package opt provides exact reference solvers at toy scale for
// validating the PTS heuristics: an exhaustive preemption planner
// (the single-pod specialization of the MILP in Eq. 12) and an exact
// feasibility check for whole-card packing. Both are exponential and
// exist purely as test oracles.
package opt

import (
	"math"

	"github.com/sjtucitlab/gfs/internal/cluster"
	"github.com/sjtucitlab/gfs/internal/simclock"
	"github.com/sjtucitlab/gfs/internal/task"
)

// PreemptionPlan is an exact minimal-cost plan for placing one pod
// needing `need` whole cards.
type PreemptionPlan struct {
	Node    *cluster.Node
	Victims []*task.Task
	Cost    float64
}

// ExactPreemption enumerates every victim subset on every node and
// returns the plan minimizing the Eq. 19 cost (with the per-node
// S_k·T normalization PTS uses), or nil when no node can host the pod
// even after evicting all spot tasks. Exponential in the per-node
// spot task count; intended for ≤ ~15 tasks per node.
func ExactPreemption(nodes []*cluster.Node, need, g, f int, beta, elapsedSeconds float64, now simclock.Time) *PreemptionPlan {
	var best *PreemptionPlan
	for _, n := range nodes {
		spot := n.SpotTasks()
		k := len(spot)
		gpuSeconds := float64(n.Capacity()) * elapsedSeconds
		for mask := 0; mask < 1<<k; mask++ {
			victimSet := make(map[int]bool, k)
			var victims []*task.Task
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					victimSet[spot[i].ID] = true
					victims = append(victims, spot[i])
				}
			}
			if n.WholeFreeGPUsExcluding(victimSet) < need {
				continue
			}
			cost := cost(g, f, victims, beta, gpuSeconds, now)
			if best == nil || cost < best.Cost {
				best = &PreemptionPlan{Node: n, Victims: victims, Cost: cost}
			}
		}
	}
	return best
}

// cost mirrors pts.preemptionCost (Eq. 19).
func cost(g, f int, victims []*task.Task, beta, gpuSeconds float64, now simclock.Time) float64 {
	t := float64(len(victims))
	denom := float64(g+f) + t
	evictTerm := 0.0
	if denom > 0 {
		evictTerm = (float64(f) + t) / denom
	}
	waste := 0.0
	for _, v := range victims {
		waste += v.Waste(now)
	}
	if gpuSeconds <= 0 {
		gpuSeconds = 1
	}
	return evictTerm + beta*waste/gpuSeconds
}

// FeasiblePacking reports whether whole-card requests reqs can be
// packed onto nodes with the given free-card capacities, by exact
// backtracking. Used to verify that schedulers find a placement
// whenever one exists.
func FeasiblePacking(freeCards []int, reqs []int) bool {
	caps := append([]int(nil), freeCards...)
	order := append([]int(nil), reqs...)
	// Largest first prunes dramatically.
	sortDesc(order)
	return packRec(caps, order, 0)
}

func packRec(caps, reqs []int, i int) bool {
	if i == len(reqs) {
		return true
	}
	seen := make(map[int]bool)
	for j := range caps {
		if caps[j] < reqs[i] || seen[caps[j]] {
			continue
		}
		seen[caps[j]] = true // symmetric capacities are equivalent
		caps[j] -= reqs[i]
		if packRec(caps, reqs, i+1) {
			caps[j] += reqs[i]
			return true
		}
		caps[j] += reqs[i]
	}
	return false
}

func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// MinVictimCount returns the smallest number of victims that frees
// `need` cards on node n, or -1 when infeasible; a tighter oracle for
// victim-count-minimizing baselines.
func MinVictimCount(n *cluster.Node, need int) int {
	spot := n.SpotTasks()
	k := len(spot)
	best := math.MaxInt
	for mask := 0; mask < 1<<k; mask++ {
		victimSet := make(map[int]bool, k)
		count := 0
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				victimSet[spot[i].ID] = true
				count++
			}
		}
		if count >= best {
			continue
		}
		if n.WholeFreeGPUsExcluding(victimSet) >= need {
			best = count
		}
	}
	if best == math.MaxInt {
		return -1
	}
	return best
}
