package gfs

// Option configures an Engine at construction.
type Option func(*Engine)

// WithScheduler selects the placement scheduler (GFS PTS or any
// baseline). Without WithQuota the spot quota stays unlimited.
func WithScheduler(s Scheduler) Option {
	return func(e *Engine) {
		e.cfg.Scheduler = s
		e.hasScheduler = true
	}
}

// WithSystem installs an assembled GFS system: its PTS scheduler and
// its GDE/SQA quota policy.
func WithSystem(sys *System) Option {
	return func(e *Engine) {
		e.cfg.Scheduler = sys.Scheduler
		e.cfg.Quota = sys.Quota
		e.hasScheduler = true
		e.hasQuota = true
	}
}

// WithQuota sets the spot quota policy (nil = unlimited).
func WithQuota(q QuotaPolicy) Option {
	return func(e *Engine) {
		e.cfg.Quota = q
		e.hasQuota = true
	}
}

// WithGrace sets the preemption grace period (30 s in production).
func WithGrace(d Duration) Option {
	return func(e *Engine) { e.cfg.Grace = d }
}

// WithQuotaInterval sets the quota update period (Table 4: 300 s).
func WithQuotaInterval(d Duration) Option {
	return func(e *Engine) { e.cfg.QuotaInterval = d }
}

// WithQuotaWindow sets the lookback for the eviction rate fed to the
// quota policy (default 1 h).
func WithQuotaWindow(d Duration) Option {
	return func(e *Engine) { e.cfg.QuotaWindow = d }
}

// WithIdleTimeout stops a run when nothing progresses for this long
// (default 48 h).
func WithIdleTimeout(d Duration) Option {
	return func(e *Engine) { e.cfg.IdleTimeout = d }
}

// WithMaxFailuresPerPass bounds wasted placement attempts per
// scheduling pass (default 25).
func WithMaxFailuresPerPass(n int) Option {
	return func(e *Engine) { e.cfg.MaxFailuresPerPass = n }
}

// WithInitialOrgDemand seeds per-organization hourly demand history
// so quota forecasts have context from hour zero.
func WithInitialOrgDemand(panel map[string][]float64) Option {
	return func(e *Engine) { e.cfg.InitialOrgDemand = panel }
}

// WithObserver registers observers for the typed event stream. It may
// be repeated; observers receive events in registration order. With
// no observers the simulator pays no emission cost.
func WithObserver(obs ...Observer) Option {
	return func(e *Engine) { e.cfg.Observers = append(e.cfg.Observers, obs...) }
}

// WithCollectors registers report collectors: each joins the event
// stream as an observer and contributes its section to the Report
// assembled by Engine.Report after the run. It may be repeated;
// collectors receive events (and report) in registration order. Use
// DefaultCollectors for the full built-in set, or compose any subset
// with custom Collector implementations.
func WithCollectors(cs ...Collector) Option {
	return func(e *Engine) {
		e.collectors = append(e.collectors, cs...)
		for _, c := range cs {
			e.cfg.Observers = append(e.cfg.Observers, c)
		}
	}
}

// WithScenario injects a scenario's timed cluster mutations into the
// run's event queue.
func WithScenario(sc *Scenario) Option {
	return func(e *Engine) {
		if sc != nil {
			e.cfg.Scenario = append(e.cfg.Scenario, sc.Actions()...)
		}
	}
}

// WithShards partitions the run across n event-loop shards backed by
// a worker pool: each org's task events live on their own shard
// queue, demand accounting fans out over org shards, and large
// placement scans fan out over contiguous node ranges. Every fan-out
// merges deterministically, so any shard count produces byte-
// identical results to an unsharded run — shards change wall-clock
// time only. Zero (the default) falls back to the GFS_SHARDS
// environment variable, then to 1 (serial); a sensible value for big
// clusters is runtime.NumCPU. See docs/performance.md for when
// sharding pays.
func WithShards(n int) Option {
	return func(e *Engine) { e.cfg.Shards = n }
}

// WithTraceSource attaches a streaming trace to the engine for
// replay: Engine.RunTrace pulls tasks from the source as the
// simulated clock reaches their submission times, feeding the
// stepwise Inject core, so the trace is never materialized. The
// source must yield tasks in non-decreasing submission order (every
// codec in this module does) and, being single-use, supports exactly
// one RunTrace.
func WithTraceSource(src TraceSource) Option {
	return func(e *Engine) { e.src = src }
}
