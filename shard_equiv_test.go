package gfs_test

import (
	"bytes"
	"testing"

	gfs "github.com/sjtucitlab/gfs"
)

// The shard-equivalence suite enforces the WithShards contract from
// the outside: a sharded run must be byte-identical to the serial one
// on every golden-corpus case and on the exported report. The shard
// count is forced through the GFS_SHARDS environment variable so the
// untouched golden constructors exercise the exact engine-default
// resolution path CI widens over, and GFS_SHARD_MIN_NODES=1 drops the
// fan-out threshold so even the corpus's 16-node clusters take the
// parallel scan path rather than trivially falling back to serial.

// TestShardEquivalence replays the full golden-corpus matrix at
// shards {2, 4} and requires every event log to match the shards=1
// rendering byte for byte.
func TestShardEquivalence(t *testing.T) {
	t.Setenv("GFS_SHARD_MIN_NODES", "1")
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			t.Setenv("GFS_SHARDS", "1")
			want := tc.run()
			for _, shards := range []string{"2", "4"} {
				t.Setenv("GFS_SHARDS", shards)
				if got := tc.run(); got != want {
					t.Fatalf("shards=%s drifted from serial run:\n%s", shards, firstDiff(want, got))
				}
			}
		})
	}
}

// TestShardReportEquivalence extends the contract to the collected
// report export: the full default-collector JSONL rendering of a storm
// run must be byte-identical at every shard count, this time through
// the explicit WithShards option rather than the environment.
func TestShardReportEquivalence(t *testing.T) {
	t.Setenv("GFS_SHARD_MIN_NODES", "1")
	render := func(shards int) string {
		eng := gfs.NewEngine(gfs.NewClusterWithTopology("A100", 16, 8, 2, 4),
			gfs.WithScenario(goldenStorm(31)),
			gfs.WithShards(shards))
		rep := eng.RunReport(gfs.GenerateTrace(goldenTraceCfg(31)))
		var buf bytes.Buffer
		if err := rep.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render(1)
	for _, shards := range []int{2, 4} {
		if got := render(shards); got != want {
			t.Fatalf("report export at shards=%d drifted from serial run:\n%s",
				shards, firstDiff(want, got))
		}
	}
}

// TestShardEquivalenceLargeScan pushes one case past the default
// fan-out threshold on a cluster large enough that the parallel node
// ranges are non-trivial, without relying on the env override.
func TestShardEquivalenceLargeScan(t *testing.T) {
	if testing.Short() {
		t.Skip("large-cluster equivalence case skipped in -short")
	}
	render := func(shards int) string {
		cfg := goldenTraceCfg(32)
		cfg.ClusterGPUs = 2048
		log := &gfs.EventLog{}
		eng := gfs.NewEngine(gfs.NewCluster("A100", 2048, 8),
			gfs.WithScheduler(gfs.NewYARNCS()), gfs.WithQuota(gfs.StaticQuota(0.5)),
			gfs.WithObserver(log),
			gfs.WithShards(shards))
		eng.Run(gfs.GenerateTrace(cfg))
		return log.String()
	}
	want := render(1)
	for _, shards := range []int{2, 4} {
		if got := render(shards); got != want {
			t.Fatalf("2048-node run at shards=%d drifted from serial run:\n%s",
				shards, firstDiff(want, got))
		}
	}
}

// TestShardEnvDefault pins the resolution order: an explicit
// WithShards beats GFS_SHARDS, and both produce the serial result.
func TestShardEnvDefault(t *testing.T) {
	t.Setenv("GFS_SHARD_MIN_NODES", "1")
	t.Setenv("GFS_SHARDS", "3")
	base := engineCase(gfs.NewYARNCS(), 1)
	t.Setenv("GFS_SHARDS", "")
	if got := engineCase(gfs.NewYARNCS(), 1); got != base {
		t.Fatalf("GFS_SHARDS=3 drifted from serial run:\n%s", firstDiff(got, base))
	}
	for _, n := range []int{1, 2} {
		t.Setenv("GFS_SHARDS", "4")
		log := &gfs.EventLog{}
		eng := gfs.NewEngine(gfs.NewCluster("A100", 16, 8),
			gfs.WithScheduler(gfs.NewYARNCS()), gfs.WithQuota(gfs.StaticQuota(0.5)),
			gfs.WithObserver(log), gfs.WithShards(n))
		eng.Run(gfs.GenerateTrace(goldenTraceCfg(1)))
		if got := log.String(); got != base {
			t.Fatalf("WithShards(%d) under GFS_SHARDS=4 drifted:\n%s", n, firstDiff(base, got))
		}
	}
}
