package gfs_test

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"testing"

	gfs "github.com/sjtucitlab/gfs"
)

// encodedChaosTrace renders the standard test workload as an
// in-memory gzipped CSV — the bytes every replay spec re-ingests.
func encodedChaosTrace(t testing.TB, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gfs.WriteTraceCSV(zw, chaosTrace(seed)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openBytes reopens the encoded trace as a fresh streaming source.
func openBytes(t testing.TB, data []byte) gfs.TraceSource {
	t.Helper()
	src, err := gfs.OpenTraceReader(bytes.NewReader(data), gfs.TraceFormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestRunTraceMatchesRun: replaying an encoded trace through the
// streaming path gives the same result as running the generated
// slice — ingestion is lossless and injection order-faithful.
func TestRunTraceMatchesRun(t *testing.T) {
	eager := gfs.NewEngine(gfs.NewCluster("A100", 16, 8),
		gfs.WithScheduler(gfs.NewYARNCS())).Run(chaosTrace(17))

	streamed, err := gfs.NewEngine(gfs.NewCluster("A100", 16, 8),
		gfs.WithScheduler(gfs.NewYARNCS()),
		gfs.WithTraceSource(openBytes(t, encodedChaosTrace(t, 17))),
	).RunTrace()
	if err != nil {
		t.Fatal(err)
	}
	if eager.HP.JCT != streamed.HP.JCT || eager.Spot.JCT != streamed.Spot.JCT ||
		eager.Spot.Evictions != streamed.Spot.Evictions ||
		eager.AllocationRate != streamed.AllocationRate || eager.End != streamed.End {
		t.Fatalf("replay diverged from eager run:\n eager    %+v %+v\n streamed %+v %+v",
			eager.HP, eager.Spot, streamed.HP, streamed.Spot)
	}
}

// TestRunTraceRequiresSource: RunTrace without WithTraceSource is a
// loud configuration error.
func TestRunTraceRequiresSource(t *testing.T) {
	if _, err := gfs.NewEngine(gfs.NewCluster("A100", 2, 8)).RunTrace(); err == nil {
		t.Fatal("RunTrace without a source must error")
	}
}

// replayBatch runs the full replay matrix — three seeds × two
// schedulers, each spec re-ingesting the gzipped bytes — at the given
// worker count and renders every result to one comparable string.
func replayBatch(t *testing.T, traces map[int64][]byte, workers int) string {
	t.Helper()
	var specs []gfs.BatchSpec
	for _, seed := range []int64{5, 17, 23} {
		for _, sched := range []string{"yarn", "fgd"} {
			seed, sched := seed, sched
			specs = append(specs, gfs.BatchSpec{
				Name: fmt.Sprintf("%s-%d", sched, seed),
				Setup: func() (*gfs.Engine, []*gfs.Task) {
					var s gfs.Scheduler
					if sched == "yarn" {
						s = gfs.NewYARNCS()
					} else {
						s = gfs.NewFGD()
					}
					return gfs.NewEngine(gfs.NewCluster("A100", 16, 8),
						gfs.WithScheduler(s),
						gfs.WithTraceSource(openBytes(t, traces[seed]))), nil
				},
			})
		}
	}
	results := gfs.RunBatch(specs, gfs.WithWorkers(workers))
	var b bytes.Buffer
	for _, br := range results {
		if br.Err != nil {
			t.Fatalf("workers=%d %s: %v", workers, br.Name, br.Err)
		}
		r := br.Result
		fmt.Fprintf(&b, "%s hp=%d/%.3f spot=%d/%.3f evict=%d alloc=%.6f waste=%.3f end=%d\n",
			br.Name, r.HP.Count, r.HP.JCT, r.Spot.Count, r.Spot.JCT,
			r.Spot.Evictions, r.AllocationRate, r.WastedGPUSeconds, r.End)
	}
	return b.String()
}

// TestReplayBatchDeterministicAcrossWorkers: the acceptance gate —
// RunBatch replay of the same encoded trace is byte-identical at 1, 4
// and 8 workers.
func TestReplayBatchDeterministicAcrossWorkers(t *testing.T) {
	traces := map[int64][]byte{}
	for _, seed := range []int64{5, 17, 23} {
		traces[seed] = encodedChaosTrace(t, seed)
	}
	base := replayBatch(t, traces, 1)
	if base == "" {
		t.Fatal("empty batch output")
	}
	for _, workers := range []int{4, 8} {
		if got := replayBatch(t, traces, workers); got != base {
			t.Fatalf("replay batch diverged at %d workers:\n%s\nvs 1 worker:\n%s", workers, got, base)
		}
	}
}

// TestFederationRunTrace: a federation replays a streamed trace and
// matches the eager federated run on the same workload.
func TestFederationRunTrace(t *testing.T) {
	build := func() *gfs.Federation {
		storm := gfs.CorrelatedFailure(6*gfs.Hour, "zone-0").
			RestoreDomain(12*gfs.Hour, "zone-0")
		return gfs.NewFederation([]gfs.Member{
			{Name: "west", Engine: gfs.NewEngine(
				gfs.NewClusterWithTopology("A100", 16, 8, 2, 4),
				gfs.WithScheduler(gfs.NewYARNCS()), gfs.WithScenario(storm))},
			{Name: "east", Engine: gfs.NewEngine(
				gfs.NewClusterWithTopology("A100", 16, 8, 2, 4),
				gfs.WithScheduler(gfs.NewYARNCS()))},
		})
	}
	eager := build().Run(chaosTrace(17))
	streamed, err := build().RunTrace(openBytes(t, encodedChaosTrace(t, 17)))
	if err != nil {
		t.Fatal(err)
	}
	if eager.GoodputGPUSeconds != streamed.GoodputGPUSeconds ||
		eager.Migrations != streamed.Migrations ||
		eager.Saturations != streamed.Saturations {
		t.Fatalf("federated replay diverged:\n eager    %+v\n streamed %+v", eager, streamed)
	}
	if streamed.Migrations == 0 {
		t.Fatal("storm should force migrations")
	}
}
