package gfs

import (
	"io"

	"github.com/sjtucitlab/gfs/internal/trace"
)

// Streaming trace-ingestion types, re-exported from the trace
// package.
type (
	// TraceSource is a pull-based trace iterator: Next returns tasks
	// one at a time in file order (io.EOF at the end), so arbitrarily
	// large traces flow through decoders, transforms and replay in
	// constant memory. See OpenTrace, Engine.RunTrace.
	TraceSource = trace.Source
	// TraceFormat identifies a trace encoding (CSV, JSONL, or an
	// external schema).
	TraceFormat = trace.Format
	// TraceEncoder streams tasks into an output format one at a time
	// (the write-side counterpart of TraceSource).
	TraceEncoder = trace.Encoder
	// TraceAdapterConfig tunes how an external schema (Alibaba,
	// Philly) maps onto the task model.
	TraceAdapterConfig = trace.AdapterConfig
)

// Trace encodings accepted by OpenTrace and the gfstrace CLI.
const (
	// TraceFormatAuto sniffs the encoding: gzip by magic bytes, JSONL
	// by a leading '{', CSV dialects by their header columns.
	TraceFormatAuto = trace.FormatAuto
	// TraceFormatCSV is the package's CSV interchange layout.
	TraceFormatCSV = trace.FormatCSV
	// TraceFormatJSONL is newline-delimited JSON, one task per line.
	TraceFormatJSONL = trace.FormatJSONL
	// TraceFormatAlibaba is the Alibaba GPU cluster trace task table.
	TraceFormatAlibaba = trace.FormatAlibaba
	// TraceFormatPhilly is the Philly-style per-job layout.
	TraceFormatPhilly = trace.FormatPhilly
)

// OpenTrace opens a trace file as a streaming TraceSource,
// transparently decompressing gzip (sniffed by magic bytes, not
// extension) and auto-detecting the format: the package's CSV and
// JSONL interchange layouts plus the Alibaba and Philly external
// schemas. Closing the source closes the file.
//
//	src, err := gfs.OpenTrace("trace.csv.gz")
//	...
//	res, err := gfs.NewEngine(cluster, gfs.WithTraceSource(src)).RunTrace()
func OpenTrace(path string) (TraceSource, error) { return trace.Open(path) }

// OpenTraceFormat is OpenTrace with an explicit format instead of
// sniffing.
func OpenTraceFormat(path string, f TraceFormat) (TraceSource, error) {
	return trace.OpenFormat(path, f)
}

// OpenTraceReader wraps an arbitrary stream (stdin, an HTTP body) as
// a TraceSource with the same gzip and format detection as OpenTrace.
// Closing the source does not close r.
func OpenTraceReader(r io.Reader, f TraceFormat) (TraceSource, error) {
	return trace.OpenReader(r, f)
}

// ParseTraceFormat resolves a format name (auto, csv, jsonl, alibaba,
// philly) as accepted by the CLIs.
func ParseTraceFormat(s string) (TraceFormat, error) { return trace.ParseFormat(s) }

// ParseTraceRegime resolves a regime name ("2024" or "2020") as
// accepted by the CLIs, rejecting anything else so a typo cannot
// silently fall back to the default era.
func ParseTraceRegime(s string) (TraceRegime, error) { return trace.ParseRegime(s) }

// TraceFormatForPath picks the output encoding a path implies: .jsonl
// or .ndjson (optionally .gz-suffixed) means JSONL, everything else
// CSV.
func TraceFormatForPath(path string) TraceFormat { return trace.FormatForPath(path) }

// TraceSkipper is implemented by lenient adapter sources (Alibaba,
// Philly) that drop unusable rows; Skipped reports how many.
type TraceSkipper = trace.Skipper

// TraceFromTasks adapts an in-memory trace to the TraceSource
// interface, so generated workloads flow through the same transform
// and replay pipeline as ingested files.
func TraceFromTasks(tasks []*Task) TraceSource { return trace.SliceSource(tasks) }

// CollectTrace drains a source into a slice, closing it. It is the
// bridge back to slice-based APIs — and the one place a streamed
// trace is fully materialized.
func CollectTrace(src TraceSource) ([]*Task, error) { return trace.Collect(src) }

// RebaseTrace shifts every submission time by a constant offset so
// the first task submits at start. External traces rarely begin at
// the simulation epoch; rebasing to 0 aligns them with the diurnal
// machinery, which assumes the epoch is midnight.
func RebaseTrace(src TraceSource, start Time) TraceSource { return trace.Rebase(src, start) }

// RateScaleTrace divides every submission time by factor: factor 2
// replays the trace at twice the arrival rate, 0.5 at half.
// Durations are untouched.
func RateScaleTrace(src TraceSource, factor float64) TraceSource {
	return trace.RateScale(src, factor)
}

// TimeWindowTrace keeps only tasks submitted in [from, to), ending
// the stream at the first task past the window so nothing beyond it
// is decoded.
func TimeWindowTrace(src TraceSource, from, to Time) TraceSource {
	return trace.TimeWindow(src, from, to)
}

// HeadWindowTrace keeps only the first span of trace time, measured
// from the first task's own submission — the window that works on
// dumps anchored at any epoch (gfstrace convert -window).
func HeadWindowTrace(src TraceSource, span Duration) TraceSource {
	return trace.HeadWindow(src, span)
}

// SortTraceBySubmit reorders a stream by submission time. It
// materializes the trace (the one non-constant-memory transform) and
// exists as the escape hatch for external dumps that are not already
// sorted, which replay requires.
func SortTraceBySubmit(src TraceSource) TraceSource { return trace.SortBySubmit(src) }

// ValidateTrace drains a source, checking every task's fields and the
// stream's submission-time ordering, and returns the number of valid
// tasks. The first malformed task or decode error is returned with
// its position.
func ValidateTrace(src TraceSource) (int, error) { return trace.Validate(src) }

// SummarizeTraceSource computes Table 3-style workload statistics in
// one streaming pass over a source, in O(1) memory.
func SummarizeTraceSource(src TraceSource) (TraceStats, error) {
	return trace.SummarizeSource(src)
}

// WriteTraceJSONL writes a trace as newline-delimited JSON, the
// self-describing sibling of the CSV interchange format.
func WriteTraceJSONL(w io.Writer, tasks []*Task) error { return trace.WriteJSONL(w, tasks) }

// ReadTraceJSONL reads a trace previously written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]*Task, error) {
	return trace.Collect(trace.NewJSONLSource(r))
}

// WriteTraceFile writes a trace to path, choosing CSV or JSONL from
// the extension and gzip-compressing when the path ends in .gz — the
// write-side counterpart of OpenTrace.
func WriteTraceFile(path string, tasks []*Task) error { return trace.WriteFile(path, tasks) }

// NewTraceEncoder builds a streaming encoder for an explicit writable
// format (TraceFormatCSV or TraceFormatJSONL). Call Flush once after
// the last Encode.
func NewTraceEncoder(w io.Writer, f TraceFormat) (TraceEncoder, error) {
	return trace.NewEncoderFormat(w, f)
}

// CreateTraceFileEncoder creates path for streaming trace output
// (format from f, or the extension under TraceFormatAuto; .gz layers
// gzip) and returns the encoder plus a close function that flushes
// encoder, gzip trailer and file in order. Call close exactly once
// after the last Encode.
func CreateTraceFileEncoder(path string, f TraceFormat) (TraceEncoder, func() error, error) {
	return trace.CreateFileEncoder(path, f)
}

// NewAlibabaTraceSource streams the Alibaba GPU cluster trace's task
// table onto the task model (see docs/traces.md for the column
// mapping and skip rules).
func NewAlibabaTraceSource(r io.Reader, cfg TraceAdapterConfig) (TraceSource, error) {
	return trace.NewAlibabaSource(r, cfg)
}

// NewPhillyTraceSource streams a Philly-style per-job CSV onto the
// task model (see docs/traces.md for the column mapping and skip
// rules).
func NewPhillyTraceSource(r io.Reader, cfg TraceAdapterConfig) (TraceSource, error) {
	return trace.NewPhillySource(r, cfg)
}
