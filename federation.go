package gfs

import (
	"context"
	"fmt"
	"sort"

	"github.com/sjtucitlab/gfs/internal/pricing"
	"github.com/sjtucitlab/gfs/internal/sched"
)

// Federation types, re-exported from the simulator core.
type (
	// RoutePolicy admits each arriving task to one federation member.
	RoutePolicy = sched.RoutePolicy
	// SpilloverPolicy migrates capacity-loss victims across members.
	SpilloverPolicy = sched.SpilloverPolicy
	// RouteContext is a RoutePolicy's decision input.
	RouteContext = sched.RouteContext
	// SpillContext is a SpilloverPolicy's decision input.
	SpillContext = sched.SpillContext
	// MemberState is the live per-member view policies decide over.
	MemberState = sched.MemberState
	// FederationResult aggregates a federated run.
	FederationResult = sched.FedResult
	// MemberResult is one member's share of a federated run.
	MemberResult = sched.MemberResult
	// PricingTable maps GPU model → on-demand hourly USD price.
	PricingTable = pricing.Table
)

// Federation event kinds (see Event.Member and Event.Target).
const (
	// TaskMigrated fires when a spilled task lands on its new member.
	TaskMigrated = sched.TaskMigrated
	// ClusterSaturated fires when a member cannot hold its workload.
	ClusterSaturated = sched.ClusterSaturated
)

// RouteLeastLoaded routes each task to the member with the highest
// free-capacity fraction.
func RouteLeastLoaded() RoutePolicy { return sched.RouteLeastLoaded{} }

// RouteCheapestSpot routes spot tasks to the cheapest member with
// room (HP tasks go least-loaded).
func RouteCheapestSpot() RoutePolicy { return sched.RouteCheapestSpot{} }

// RouteForecastAware routes to the member with the most free capacity
// discounted by its forecast spot reclamation over the task's
// runtime (see Member.Profile).
func RouteForecastAware() RoutePolicy { return sched.RouteForecastAware{} }

// RouteRoundRobin deals tasks to members in rotation regardless of
// state — the static split modelling isolated clusters, used as the
// baseline federation routing is compared against.
func RouteRoundRobin() RoutePolicy { return &sched.RouteRoundRobin{} }

// SpillToLeastLoaded migrates capacity-loss victims to the sibling
// member with the most free GPUs that fits them, keeping them local
// otherwise. It is the default spillover policy.
func SpillToLeastLoaded() SpilloverPolicy { return sched.SpillLeastLoaded{} }

// DefaultPricing returns representative cloud on-demand list prices
// per GPU model.
func DefaultPricing() PricingTable { return pricing.DefaultTable() }

// Member is one federation member: a named Engine (cluster +
// scheduler + quota + scenario) plus the pricing and forecast signals
// routing policies read.
type Member struct {
	// Name uniquely identifies the member within the federation.
	Name string
	// Engine is the member's fully configured simulation session.
	// Its scenario, quota policy and observers all apply to the
	// member's share of the federated run.
	Engine *Engine
	// Pricing prices the member's GPU models; nil uses
	// DefaultPricing. The member's effective spot price (cheapest
	// priced model × spot margin) feeds RouteCheapestSpot.
	Pricing PricingTable
	// Profile optionally forecasts the member's diurnal spot
	// reclamation; RouteForecastAware steers spot tasks away from
	// members heading into their reclamation peak.
	Profile *DiurnalProfile
}

// spotPrice derives the member's effective $/GPU-hour for spot
// capacity: the cheapest priced model in its cluster at the spot
// realization margin. Members whose models are all unpriced fall
// back to the table mean so price-aware routing still ranks them.
func (m Member) spotPrice() float64 {
	tbl := m.Pricing
	if tbl == nil {
		tbl = pricing.DefaultTable()
	}
	best := 0.0
	for _, model := range m.Engine.Cluster().Models() {
		if p := tbl[model]; p > 0 && (best == 0 || p < best) {
			best = p
		}
	}
	if best == 0 {
		// Average over the table in sorted-key order: float summation
		// folds left to right, so map order here would leak into the
		// routed price.
		models := make([]string, 0, len(tbl))
		for model := range tbl {
			models = append(models, model)
		}
		sort.Strings(models)
		for _, model := range models {
			best += tbl[model]
		}
		if len(models) > 0 {
			best /= float64(len(models))
		}
	}
	return best * pricing.DefaultSpotMargin
}

// Federation composes named member clusters into one scheduling
// domain: a route policy admits each arriving task to one member, the
// members advance in lockstep on a shared simulated clock, and
// capacity-loss evictions (storms, domain failures, reclamation)
// spill over to sibling members after a migration delay.
//
//	fed := gfs.NewFederation([]gfs.Member{
//		{Name: "west", Engine: gfs.NewEngine(clWest, gfs.WithScenario(storm))},
//		{Name: "east", Engine: gfs.NewEngine(clEast)},
//	}, gfs.WithRoute(gfs.RouteCheapestSpot()))
//	res := fed.Run(tasks)
//	fmt.Println(res.Member("east").MigratedIn)
//
// Federated runs honor the RunBatch determinism contract: the same
// members, policies and trace produce byte-identical event logs and
// results at any worker count. Like Engine.Run, Run mutates tasks and
// member clusters, so each Run needs freshly built members and a
// fresh trace (see BatchSpec.SetupFederation).
type Federation struct {
	members   []Member
	route     RoutePolicy
	spill     SpilloverPolicy
	delay     Duration
	observers []Observer
	// shards is the default member shard count from
	// WithFederationShards; members that set their own keep it.
	shards int
	// src is the streaming trace attached by
	// WithFederationTraceSource, drained by a RunBatch replay spec.
	src TraceSource
	// Report-collection state: collectMk is the set factory from
	// WithFederationCollectors, realized into one collector set per
	// member plus an aggregate set (demuxed from the federation
	// observers) when the run starts — so the metas see the final
	// route policy regardless of option order, and repeated options
	// simply replace the factory.
	collectMk        func() []Collector
	aggCollectors    []Collector
	memberCollectors [][]Collector
	memberIndex      map[string]int
	lastRes          *FederationResult
}

// FederationOption configures a Federation at construction.
type FederationOption func(*Federation)

// WithRoute selects the admission route policy (default:
// RouteLeastLoaded).
func WithRoute(p RoutePolicy) FederationOption {
	return func(f *Federation) { f.route = p }
}

// WithSpillover selects the spillover policy; nil disables spillover,
// so evicted tasks requeue on their own member (default:
// SpillToLeastLoaded).
func WithSpillover(p SpilloverPolicy) FederationOption {
	return func(f *Federation) { f.spill = p }
}

// WithMigrationDelay sets the simulated lag between a spillover
// decision and the task's arrival at its new member (default: one
// minute).
func WithMigrationDelay(d Duration) FederationOption {
	return func(f *Federation) { f.delay = d }
}

// WithFederationObserver registers observers for the federation event
// stream: every member event tagged with its member name, plus
// TaskMigrated and ClusterSaturated, renumbered by one shared
// sequence.
func WithFederationObserver(obs ...Observer) FederationOption {
	return func(f *Federation) { f.observers = append(f.observers, obs...) }
}

// WithFederationCollectors attaches report collection to the
// federation: make builds one fresh collector set per member plus
// one aggregate set over the whole member-tagged stream (nil uses
// DefaultCollectors). After Run or RunTrace, Federation.Report
// assembles the merged per-member + aggregate FederationReport.
func WithFederationCollectors(mk func() []Collector) FederationOption {
	return func(f *Federation) {
		if mk == nil {
			mk = DefaultCollectors
		}
		f.collectMk = mk
	}
}

// WithFederationShards partitions every member's event loop across n
// shards (see WithShards). Members whose engines already set a shard
// count keep it; the result is byte-identical to an unsharded
// federation for any combination of member shard counts.
func WithFederationShards(n int) FederationOption {
	return func(f *Federation) { f.shards = n }
}

// WithFederationTraceSource attaches a streaming trace for replay.
// It exists for RunBatch federation specs: a SetupFederation that
// returns a nil task slice with a source attached is replayed via
// RunTrace. Direct callers can simply pass the source to RunTrace.
func WithFederationTraceSource(src TraceSource) FederationOption {
	return func(f *Federation) { f.src = src }
}

// NewFederation builds a federation over the members, applying
// options in order. It panics on an empty member list, a nil member
// engine, or duplicate or empty member names — configuration bugs
// that would silently corrupt routing.
func NewFederation(members []Member, opts ...FederationOption) *Federation {
	if len(members) == 0 {
		panic("gfs: NewFederation needs at least one member")
	}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Name == "" {
			panic("gfs: federation member with empty name")
		}
		if seen[m.Name] {
			panic(fmt.Sprintf("gfs: duplicate federation member %q", m.Name))
		}
		if m.Engine == nil {
			panic(fmt.Sprintf("gfs: federation member %q has no engine", m.Name))
		}
		seen[m.Name] = true
	}
	f := &Federation{
		members: append([]Member(nil), members...),
		route:   RouteLeastLoaded(),
		spill:   SpillToLeastLoaded(),
		delay:   Minute,
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Members returns the federation's members in order.
func (f *Federation) Members() []Member { return f.members }

// TraceSource returns the streaming trace attached by
// WithFederationTraceSource (nil without one).
func (f *Federation) TraceSource() TraceSource { return f.src }

// fedDemux fans the tagged federation stream out to the aggregate
// collector set and, by member name, to each member's set.
type fedDemux struct{ f *Federation }

// OnEvent implements Observer.
func (d fedDemux) OnEvent(e Event) {
	for _, c := range d.f.aggCollectors {
		c.OnEvent(e)
	}
	if i, ok := d.f.memberIndex[e.Member]; ok {
		for _, c := range d.f.memberCollectors[i] {
			c.OnEvent(e)
		}
	}
}

// realizeCollectors builds the configured collector sets at run
// start: per-member and aggregate sets begun against pre-run metas,
// with one demux joined to the federation observers. It runs at most
// once; without a configured factory it is a no-op.
func (f *Federation) realizeCollectors() {
	if f.collectMk == nil || f.aggCollectors != nil {
		return
	}
	f.attachCollectors(f.collectMk)
}

// attachCollectors is realizeCollectors' worker: it assumes no sets
// are attached yet.
func (f *Federation) attachCollectors(mk func() []Collector) {
	agg := RunMeta{Scheduler: "federation(" + f.route.Name() + ")"}
	pools := map[string]float64{}
	f.memberIndex = map[string]int{}
	f.memberCollectors = nil
	for i, m := range f.members {
		meta := m.Engine.runMeta()
		agg.TotalGPUs += meta.TotalGPUs
		for _, p := range meta.Pools {
			pools[p.Model] += p.GPUs
		}
		cs := mk()
		for _, c := range cs {
			c.Begin(meta)
		}
		f.memberCollectors = append(f.memberCollectors, cs)
		f.memberIndex[m.Name] = i
	}
	var models []string
	for m := range pools {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		agg.Pools = append(agg.Pools, PoolInfo{Model: m, GPUs: pools[m]})
	}
	f.aggCollectors = mk()
	for _, c := range f.aggCollectors {
		c.Begin(agg)
	}
	f.observers = append(f.observers, fedDemux{f: f})
}

// ensureCollectors arranges for the default collector sets when none
// were configured, so RunReport always has sections to assemble.
func (f *Federation) ensureCollectors() {
	if f.collectMk == nil {
		f.collectMk = DefaultCollectors
	}
}

// Report assembles the merged FederationReport from the collector
// sets attached by WithFederationCollectors (or RunReport). Call it
// after Run or RunTrace; nil without collectors.
func (f *Federation) Report() *FederationReport {
	if f.aggCollectors == nil {
		return nil
	}
	out := &FederationReport{Aggregate: &Report{Scheduler: "federation(" + f.route.Name() + ")"}}
	for _, c := range f.aggCollectors {
		c.Finish(out.Aggregate)
	}
	for i, m := range f.members {
		rep := &Report{}
		for _, c := range f.memberCollectors[i] {
			c.Finish(rep)
		}
		out.Members = append(out.Members, MemberReport{Name: m.Name, Report: rep})
	}
	if f.lastRes != nil {
		out.Migrations = f.lastRes.Migrations
		out.Saturations = f.lastRes.Saturations
	}
	return out
}

// RunReport executes the federated run with collectors attached (the
// configured sets, or the defaults when none were configured) and
// returns the merged per-member + aggregate report. Like Run, it
// mutates tasks and member clusters, so each federation reports on
// one run.
func (f *Federation) RunReport(tasks []*Task) *FederationReport {
	f.ensureCollectors()
	f.Run(tasks)
	return f.Report()
}

// RunTraceReport is RunReport over a streaming trace source.
func (f *Federation) RunTraceReport(src TraceSource) (*FederationReport, error) {
	f.ensureCollectors()
	if _, err := f.RunTrace(src); err != nil {
		return nil, err
	}
	return f.Report(), nil
}

// Run executes the federated simulation over the trace and returns
// per-member and aggregate metrics. Tasks and member clusters are
// mutated in place, so each Run needs a fresh federation and trace.
func (f *Federation) Run(tasks []*Task) *FederationResult {
	f.realizeCollectors()
	res := sched.RunFederation(f.fedConfig(), tasks)
	f.lastRes = res
	return res
}

// RunContext is Run with cooperative cancellation: the shared-clock
// loop checks ctx once per simulated instant and returns ctx.Err()
// promptly when it fires, assembling no result.
func (f *Federation) RunContext(ctx context.Context, tasks []*Task) (*FederationResult, error) {
	f.realizeCollectors()
	res, err := sched.RunFederationContext(ctx, f.fedConfig(), tasks)
	if err != nil {
		return nil, err
	}
	f.lastRes = res
	return res, nil
}

// RunTrace executes the federated simulation over a streaming trace
// source: arrivals are pulled just ahead of the shared clock and
// routed to members through the same Inject path as Run, so federated
// replay of an ingested trace stays constant-memory on the ingestion
// side. The source must yield tasks in non-decreasing submission
// order; it is closed when the replay ends.
func (f *Federation) RunTrace(src TraceSource) (*FederationResult, error) {
	return f.RunTraceContext(context.Background(), src)
}

// RunTraceContext is RunTrace with cooperative cancellation, checked
// once per shared-clock instant like RunContext. The source is closed
// when the replay ends, cancelled or not.
func (f *Federation) RunTraceContext(ctx context.Context, src TraceSource) (*FederationResult, error) {
	defer src.Close()
	f.realizeCollectors()
	res, err := sched.RunFederationSourceContext(ctx, f.fedConfig(), src)
	if err != nil {
		return nil, err
	}
	f.lastRes = res
	return res, nil
}

// fedConfig lowers the federation's members and policies onto the
// simulator core's configuration.
func (f *Federation) fedConfig() sched.FedConfig {
	cfg := sched.FedConfig{
		Route:          f.route,
		Spill:          f.spill,
		MigrationDelay: f.delay,
		Observers:      f.observers,
	}
	for _, m := range f.members {
		fm := sched.FedMember{
			Name:      m.Name,
			Cfg:       m.Engine.Config(),
			SpotPrice: m.spotPrice(),
		}
		if fm.Cfg.Shards == 0 {
			fm.Cfg.Shards = f.shards
		}
		if m.Profile != nil {
			p := *m.Profile
			fm.Reclaim = p.Intensity
		}
		cfg.Members = append(cfg.Members, fm)
	}
	return cfg
}
